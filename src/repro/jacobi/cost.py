"""The paper's Jacobi2D cost model (§5):

    ``T_i = A_i * P_i + C_i``

where ``T_i`` is the time for machine *i* to compute its region, ``A_i``
the area of the region, ``P_i`` the time to compute a single point
locally, and ``C_i`` the time to send and receive its strip borders.

:class:`StripCostModel` evaluates the model from whatever information
source the scheduler has: NWS forecasts (the AppLeS agent), nominal
capability (the compile-time baselines), or instantaneous simulator truth
(oracle ablations).  Keeping one implementation parameterised by the
information source makes the ablation benchmarks an apples-to-apples
comparison of *information*, not of code paths.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.resources import ResourcePool
from repro.jacobi.grid import JacobiProblem
from repro.jacobi.partition import StripPartition

__all__ = ["strip_comm_seconds", "StripCostModel"]


def strip_comm_seconds(
    pool: ResourcePool,
    order: Sequence[str],
    problem: JacobiProblem,
) -> list[float]:
    """Predicted border-exchange seconds ``C_i`` for machines in strip order.

    Machine *i* exchanges a full border row each way with each neighbour in
    the strip ordering (1 border at the ends, 2 inside).  Bandwidths come
    from the pool's prediction interface, so the same function serves both
    NWS-informed and nominal planners.
    """
    order = list(order)
    exchange = problem.border_exchange_bytes()
    costs = []
    for idx, machine in enumerate(order):
        c = 0.0
        for nbr_idx in (idx - 1, idx + 1):
            if 0 <= nbr_idx < len(order):
                c += pool.predicted_transfer_time(machine, order[nbr_idx], exchange)
        costs.append(c)
    return costs


class StripCostModel:
    """Evaluate ``T_i = A_i * P_i + C_i`` for strip partitions.

    Parameters
    ----------
    pool:
        Information source.  With an NWS attached, ``P_i`` and ``C_i`` use
        forecasts; without one, they use nominal capability.
    problem:
        The Jacobi2D instance.
    account_memory:
        When True, a machine whose area spills its real memory has its
        ``P_i`` inflated by the host paging model — used to *predict* the
        cost of memory-oblivious schedules.
    """

    def __init__(
        self,
        pool: ResourcePool,
        problem: JacobiProblem,
        account_memory: bool = True,
        conservatism_sigmas: float = 1.0,
        sync_overhead_s: float | None = None,
    ) -> None:
        self.pool = pool
        self.problem = problem
        self.account_memory = account_memory
        if conservatism_sigmas < 0:
            raise ValueError("conservatism_sigmas must be >= 0")
        self.conservatism_sigmas = conservatism_sigmas
        # Per-machine per-iteration runtime overhead (KeLP region setup,
        # barrier arrival); defaults to the problem's figure so the model
        # predicts what the runtime actually charges.
        self.sync_overhead_s = (
            problem.sync_overhead_s if sync_overhead_s is None else sync_overhead_s
        )
        if self.sync_overhead_s < 0:
            raise ValueError("sync_overhead_s must be >= 0")

    # -- model terms ------------------------------------------------------
    def point_rate(self, machine: str) -> float:
        """``1 / P_i``: predicted points/second for ``machine`` (in-core).

        Uses the conservative (error-discounted) speed: a barrier step
        waits for every member, so members are budgeted at a pessimistic
        availability quantile rather than the mean forecast.
        """
        speed = self.pool.predicted_speed_conservative(
            machine, self.conservatism_sigmas
        )
        if speed <= 0.0:
            return 0.0
        return speed / self.problem.flop_per_point

    def point_time(self, machine: str, area: float = 0.0) -> float:
        """``P_i``: predicted seconds/point, optionally memory-adjusted."""
        rate = self.point_rate(machine)
        if rate <= 0.0:
            return float("inf")
        p = 1.0 / rate
        if self.account_memory and area > 0.0:
            host = self.pool.topology.host(machine)
            p *= host.memory.slowdown(self.problem.footprint_mb(area))
        return p

    def capacity_points(self, machine: str) -> float:
        """Points that fit in ``machine``'s available real memory."""
        info = self.pool.machine_info(machine)
        return info.memory_available_mb * 1e6 / self.problem.bytes_per_point

    def comm_costs(self, order: Sequence[str]) -> list[float]:
        """``C_i`` per machine for the given strip order.

        Includes the per-participant sync overhead, so growing the machine
        set has a cost the balancer can weigh against the added rate.
        """
        costs = strip_comm_seconds(self.pool, order, self.problem)
        return [c + self.sync_overhead_s for c in costs]

    # -- whole-partition predictions --------------------------------------
    def machine_time(self, partition: StripPartition, machine: str) -> float:
        """``T_i`` for one machine of a concrete partition."""
        area = float(partition.area(machine))
        order = partition.machines
        idx = order.index(machine)
        exchange = self.problem.border_exchange_bytes()
        c = 0.0
        for nbr_idx in (idx - 1, idx + 1):
            if 0 <= nbr_idx < len(order):
                c += self.pool.predicted_transfer_time(machine, order[nbr_idx], exchange)
        return area * self.point_time(machine, area) + c + self.sync_overhead_s

    def step_time(self, partition: StripPartition) -> float:
        """Predicted sweep time: ``max_i T_i``."""
        return max(self.machine_time(partition, m) for m in partition.machines)

    def execution_time(self, partition: StripPartition) -> float:
        """Predicted total time: step time × iterations."""
        return self.step_time(partition) * self.problem.iterations

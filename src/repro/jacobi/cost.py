"""The paper's Jacobi2D cost model (§5):

    ``T_i = A_i * P_i + C_i``

where ``T_i`` is the time for machine *i* to compute its region, ``A_i``
the area of the region, ``P_i`` the time to compute a single point
locally, and ``C_i`` the time to send and receive its strip borders.

:class:`StripCostModel` evaluates the model from whatever information
source the scheduler has: NWS forecasts (the AppLeS agent), nominal
capability (the compile-time baselines), or instantaneous simulator truth
(oracle ablations).  Keeping one implementation parameterised by the
information source makes the ablation benchmarks an apples-to-apples
comparison of *information*, not of code paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.resources import ResourcePool
from repro.jacobi.grid import JacobiProblem
from repro.jacobi.partition import StripPartition
from repro.util import perf

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nws.snapshot import ForecastSnapshot

__all__ = [
    "strip_comm_seconds",
    "StripCostModel",
    "pairwise_transfer_matrix",
    "batched_neighbor_comm_costs",
]


def strip_comm_seconds(
    pool: ResourcePool,
    order: Sequence[str],
    problem: JacobiProblem,
) -> list[float]:
    """Predicted border-exchange seconds ``C_i`` for machines in strip order.

    Machine *i* exchanges a full border row each way with each neighbour in
    the strip ordering (1 border at the ends, 2 inside).  Bandwidths come
    from the pool's prediction interface, so the same function serves both
    NWS-informed and nominal planners.
    """
    order = list(order)
    exchange = problem.border_exchange_bytes()
    costs = []
    for idx, machine in enumerate(order):
        c = 0.0
        for nbr_idx in (idx - 1, idx + 1):
            if 0 <= nbr_idx < len(order):
                c += pool.predicted_transfer_time(machine, order[nbr_idx], exchange)
        costs.append(c)
    return costs


class StripCostModel:
    """Evaluate ``T_i = A_i * P_i + C_i`` for strip partitions.

    Parameters
    ----------
    pool:
        Information source.  With an NWS attached, ``P_i`` and ``C_i`` use
        forecasts; without one, they use nominal capability.
    problem:
        The Jacobi2D instance.
    account_memory:
        When True, a machine whose area spills its real memory has its
        ``P_i`` inflated by the host paging model — used to *predict* the
        cost of memory-oblivious schedules.
    snapshot:
        Optional :class:`~repro.nws.snapshot.ForecastSnapshot` taken from
        the same pool.  When set, forecast queries (conservative speeds,
        transfer times) go through the snapshot's memo instead of the pool
        — bit-identical values, shared across the candidate evaluations of
        one scheduling decision.
    """

    def __init__(
        self,
        pool: ResourcePool,
        problem: JacobiProblem,
        account_memory: bool = True,
        conservatism_sigmas: float = 1.0,
        sync_overhead_s: float | None = None,
        snapshot: "ForecastSnapshot | None" = None,
    ) -> None:
        self.pool = pool
        self.problem = problem
        self.account_memory = account_memory
        self.snapshot = snapshot
        # Per-machine memos, valid only while the pool is frozen at one
        # scheduling instant — which is exactly when a snapshot is set.
        # Without a snapshot every query goes to the pool, matching the
        # reference path (a fresh model per plan() call).
        self._rate_memo: dict[str, float] = {}
        self._ptime_memo: dict[str, float] = {}
        self._cap_memo: dict[str, float] = {}
        self._pair_memo: dict[tuple[str, ...], np.ndarray] = {}
        # Read once at construction, like the Coordinator: under
        # REPRO_NO_FASTPATH=1 the per-machine loops below run exactly as
        # the seed implementation wrote them.
        self._fast = perf.fastpath_enabled()
        if conservatism_sigmas < 0:
            raise ValueError("conservatism_sigmas must be >= 0")
        self.conservatism_sigmas = conservatism_sigmas
        # Per-machine per-iteration runtime overhead (KeLP region setup,
        # barrier arrival); defaults to the problem's figure so the model
        # predicts what the runtime actually charges.
        self.sync_overhead_s = (
            problem.sync_overhead_s if sync_overhead_s is None else sync_overhead_s
        )
        if self.sync_overhead_s < 0:
            raise ValueError("sync_overhead_s must be >= 0")

    # -- forecast access (snapshot memo when available) -------------------
    def _conservative_speed(self, machine: str) -> float:
        if self.snapshot is not None:
            return self.snapshot.conservative_speed(machine, self.conservatism_sigmas)
        return self.pool.predicted_speed_conservative(machine, self.conservatism_sigmas)

    def _transfer_time(self, a: str, b: str, nbytes: float) -> float:
        if self.snapshot is not None:
            return self.snapshot.transfer_time(a, b, nbytes)
        return self.pool.predicted_transfer_time(a, b, nbytes)

    # -- model terms ------------------------------------------------------
    def point_rate(self, machine: str) -> float:
        """``1 / P_i``: predicted points/second for ``machine`` (in-core).

        Uses the conservative (error-discounted) speed: a barrier step
        waits for every member, so members are budgeted at a pessimistic
        availability quantile rather than the mean forecast.
        """
        if self.snapshot is not None:
            rate = self._rate_memo.get(machine)
            if rate is None:
                speed = self._conservative_speed(machine)
                rate = 0.0 if speed <= 0.0 else speed / self.problem.flop_per_point
                self._rate_memo[machine] = rate
            return rate
        speed = self._conservative_speed(machine)
        if speed <= 0.0:
            return 0.0
        return speed / self.problem.flop_per_point

    def point_time(self, machine: str, area: float = 0.0) -> float:
        """``P_i``: predicted seconds/point, optionally memory-adjusted."""
        if self.snapshot is not None:
            p = self._ptime_memo.get(machine)
            if p is None:
                rate = self.point_rate(machine)
                p = float("inf") if rate <= 0.0 else 1.0 / rate
                self._ptime_memo[machine] = p
        else:
            rate = self.point_rate(machine)
            if rate <= 0.0:
                return float("inf")
            p = 1.0 / rate
        if self.account_memory and area > 0.0 and p != float("inf"):
            host = self.pool.topology.host(machine)
            p *= host.memory.slowdown(self.problem.footprint_mb(area))
        return p

    def capacity_points(self, machine: str) -> float:
        """Points that fit in ``machine``'s available real memory."""
        if self.snapshot is not None:
            cap = self._cap_memo.get(machine)
            if cap is None:
                info = self.pool.machine_info(machine)
                cap = info.memory_available_mb * 1e6 / self.problem.bytes_per_point
                self._cap_memo[machine] = cap
            return cap
        info = self.pool.machine_info(machine)
        return info.memory_available_mb * 1e6 / self.problem.bytes_per_point

    def comm_costs(self, order: Sequence[str]) -> list[float]:
        """``C_i`` per machine for the given strip order.

        Includes the per-participant sync overhead, so growing the machine
        set has a cost the balancer can weigh against the added rate.
        """
        order = list(order)
        exchange = self.problem.border_exchange_bytes()
        # Bind the transfer lookup once: in the candidate loop this runs
        # tens of thousands of times and the per-call indirection shows.
        transfer = (
            self.snapshot.transfer_time
            if self.snapshot is not None
            else self.pool.predicted_transfer_time
        )
        costs = []
        for idx, machine in enumerate(order):
            c = 0.0
            for nbr_idx in (idx - 1, idx + 1):
                if 0 <= nbr_idx < len(order):
                    c += transfer(machine, order[nbr_idx], exchange)
            costs.append(c)
        return [c + self.sync_overhead_s for c in costs]

    # -- whole-partition predictions --------------------------------------
    def machine_time(self, partition: StripPartition, machine: str) -> float:
        """``T_i`` for one machine of a concrete partition."""
        area = float(partition.area(machine))
        order = partition.machines
        idx = order.index(machine)
        exchange = self.problem.border_exchange_bytes()
        c = 0.0
        for nbr_idx in (idx - 1, idx + 1):
            if 0 <= nbr_idx < len(order):
                c += self._transfer_time(machine, order[nbr_idx], exchange)
        return area * self.point_time(machine, area) + c + self.sync_overhead_s

    def step_time(self, partition: StripPartition) -> float:
        """Predicted sweep time: ``max_i T_i``.

        The fast path computes every ``T_i`` in one pass over the strips —
        same arithmetic as :meth:`machine_time`, without its per-call index
        and strip lookups (which are linear scans, quadratic over the set).
        """
        if not self._fast:
            return max(self.machine_time(partition, m) for m in partition.machines)
        strips = partition.strips
        k = len(strips)
        n = partition.n
        exchange = self.problem.border_exchange_bytes()
        transfer = (
            self.snapshot.transfer_time
            if self.snapshot is not None
            else self.pool.predicted_transfer_time
        )
        times = []
        for idx, strip in enumerate(strips):
            machine = strip.machine
            area = float(strip.row_count * n)
            c = 0.0
            if idx > 0:
                c += transfer(machine, strips[idx - 1].machine, exchange)
            if idx + 1 < k:
                c += transfer(machine, strips[idx + 1].machine, exchange)
            times.append(area * self.point_time(machine, area) + c + self.sync_overhead_s)
        return max(times)

    def execution_time(self, partition: StripPartition) -> float:
        """Predicted total time: step time × iterations."""
        return self.step_time(partition) * self.problem.iterations

    # -- batched kernels ---------------------------------------------------
    def comm_cost_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Border-exchange seconds between every machine pair of ``names``.

        See :func:`pairwise_transfer_matrix`; this binds the model's own
        exchange volume and transfer source (snapshot memo when present).
        Memoised per name order while frozen at a snapshot — the strip
        planner's pruning bounds and batch inputs both gather from it, so
        one decision builds each matrix once.  Callers must treat the
        returned array as read-only (copy before mutating).
        """
        if self.snapshot is None:
            return pairwise_transfer_matrix(self, names)
        key = tuple(names)
        pair = self._pair_memo.get(key)
        if pair is None:
            pair = pairwise_transfer_matrix(self, names)
            self._pair_memo[key] = pair
        return pair


def pairwise_transfer_matrix(
    model: StripCostModel, names: Sequence[str]
) -> np.ndarray:
    """``(n, n)`` matrix of one-border transfer seconds between machines.

    Entry ``[i, j]`` is exactly ``model._transfer_time(names[i], names[j],
    exchange)`` — the term :meth:`StripCostModel.comm_costs` charges for a
    strip neighbour — so any neighbour cost a scalar plan would compute can
    be *gathered* from this matrix instead of re-queried: the batched
    evaluation core of the scheduling service indexes it with the neighbour
    structure of thousands of candidate strip orders at once.  Dead links
    appear as ``inf``, mirroring the scalar path.  The diagonal is zero; a
    machine is never its own strip neighbour.
    """
    names = list(names)
    n = len(names)
    exchange = model.problem.border_exchange_bytes()
    pair = np.zeros((n, n), dtype=float)
    for i, a in enumerate(names):
        for j, b in enumerate(names):
            if i != j:
                pair[i, j] = model._transfer_time(a, b, exchange)
    return pair


def batched_neighbor_comm_costs(
    pair: np.ndarray,
    order_idx: np.ndarray,
    counts: np.ndarray,
    sync_overhead_s: float | np.ndarray,
    row_pair: np.ndarray | None = None,
) -> np.ndarray:
    """``C_i`` for every member of every candidate strip order at once.

    Parameters
    ----------
    pair:
        ``(n, n)`` transfer matrix (:func:`pairwise_transfer_matrix`), or a
        ``(J, n, n)`` stack of them when rows mix requests with different
        exchange volumes — select per row with ``row_pair``.
    order_idx:
        ``(m, n)`` machine indices in strip order per row; slots at and
        beyond ``counts[i]`` are padding (any valid index).
    counts:
        ``(m,)`` member count per row.
    sync_overhead_s:
        Per-participant sync overhead added to every member cost — scalar
        or ``(m,)`` per row.
    row_pair:
        ``(m,)`` index into the first axis of a 3-D ``pair``; ignored for
        a single matrix.

    Returns the ``(m, n)`` member costs in strip order, ``inf`` at padding
    slots so downstream sorts push them past every real member.  Member
    values are bit-identical to :meth:`StripCostModel.comm_costs`: the
    predecessor transfer is added before the successor transfer, and ends
    of the strip add ``0.0`` exactly.
    """
    order_idx = np.asarray(order_idx)
    m, n = order_idx.shape
    counts = np.asarray(counts)
    slots = np.arange(n)[None, :]
    valid = slots < counts[:, None]
    prev_idx = np.roll(order_idx, 1, axis=1)
    next_idx = np.roll(order_idx, -1, axis=1)
    if pair.ndim == 3:
        if row_pair is None:
            raise ValueError("row_pair is required with a (J, n, n) pair stack")
        rp = np.asarray(row_pair)[:, None]
        t_prev = pair[rp, order_idx, prev_idx]
        t_next = pair[rp, order_idx, next_idx]
    else:
        t_prev = pair[order_idx, prev_idx]
        t_next = pair[order_idx, next_idx]
    has_prev = slots > 0
    has_next = slots < (counts[:, None] - 1)
    costs = (
        np.where(valid & has_prev, t_prev, 0.0)
        + np.where(valid & has_next, t_next, 0.0)
        + np.asarray(sync_overhead_s, dtype=float).reshape(-1, 1)
    )
    return np.where(valid, costs, np.inf)

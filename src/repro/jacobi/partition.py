"""Partition geometry for Jacobi2D.

Three families, matching the paper's comparison (Figure 5):

- **strip** partitions (:class:`StripPartition`) — contiguous row bands;
  uniform (:func:`uniform_strip`), non-uniform compile-time
  (:func:`nonuniform_strip`, Figure 4), and AppLeS time-balanced
  (:func:`apples_strip`, Figure 3);
- **blocked** partitions (:class:`BlockPartition`) — the HPF
  uniform/blocked baseline: a 2-D processor grid of equal tiles.

Partitions are pure geometry: machine names attached to index ranges.
Costs live in :mod:`repro.jacobi.cost`; numerics in
:mod:`repro.jacobi.runtime`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "Strip",
    "StripPartition",
    "Block",
    "BlockPartition",
    "uniform_strip",
    "nonuniform_strip",
    "apples_strip",
    "blocked_partition",
    "largest_remainder_rows",
    "batched_largest_remainder_rows",
]


@dataclass(frozen=True)
class Strip:
    """A contiguous band of rows assigned to one machine."""

    machine: str
    row_start: int
    row_count: int

    def __post_init__(self) -> None:
        if self.row_start < 0 or self.row_count <= 0:
            raise ValueError(
                f"invalid strip: start={self.row_start}, count={self.row_count}"
            )

    @property
    def row_end(self) -> int:
        """One past the last row."""
        return self.row_start + self.row_count


@dataclass(frozen=True)
class StripPartition:
    """A full-coverage row decomposition of an n×n grid."""

    n: int
    strips: tuple[Strip, ...]

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if not self.strips:
            raise ValueError("partition needs at least one strip")
        expected = 0
        for s in self.strips:
            if s.row_start != expected:
                raise ValueError(
                    f"strips must tile rows contiguously: expected start {expected}, "
                    f"got {s.row_start} for {s.machine!r}"
                )
            expected = s.row_end
        if expected != self.n:
            raise ValueError(f"strips cover {expected} rows, grid has {self.n}")
        machines = [s.machine for s in self.strips]
        if len(set(machines)) != len(machines):
            raise ValueError(f"machine appears in two strips: {machines}")

    @property
    def machines(self) -> tuple[str, ...]:
        """Machines in strip order (top to bottom)."""
        return tuple(s.machine for s in self.strips)

    def area(self, machine: str) -> int:
        """Points assigned to ``machine``."""
        return self.strip_for(machine).row_count * self.n

    def areas(self) -> dict[str, int]:
        """Points per machine."""
        return {s.machine: s.row_count * self.n for s in self.strips}

    def strip_for(self, machine: str) -> Strip:
        """The strip owned by ``machine``."""
        for s in self.strips:
            if s.machine == machine:
                return s
        raise KeyError(f"no strip for machine {machine!r}")

    def neighbors(self, machine: str) -> list[str]:
        """Machines sharing a border with ``machine`` (0, 1 or 2 of them)."""
        idx = self.machines.index(machine)
        out = []
        if idx > 0:
            out.append(self.strips[idx - 1].machine)
        if idx < len(self.strips) - 1:
            out.append(self.strips[idx + 1].machine)
        return out

    def border_count(self, machine: str) -> int:
        """Number of borders ``machine`` exchanges per sweep (0–2)."""
        return len(self.neighbors(machine))


@dataclass(frozen=True)
class Block:
    """A rectangular tile assigned to one machine."""

    machine: str
    row_start: int
    row_count: int
    col_start: int
    col_count: int

    def __post_init__(self) -> None:
        if min(self.row_start, self.col_start) < 0 or min(self.row_count, self.col_count) <= 0:
            raise ValueError(f"invalid block geometry for {self.machine!r}")

    @property
    def area(self) -> int:
        """Points in the tile."""
        return self.row_count * self.col_count

    @property
    def row_end(self) -> int:
        return self.row_start + self.row_count

    @property
    def col_end(self) -> int:
        return self.col_start + self.col_count


@dataclass(frozen=True)
class BlockPartition:
    """A pr×pc tiling of an n×n grid (the HPF BLOCK,BLOCK distribution)."""

    n: int
    pr: int
    pc: int
    blocks: tuple[Block, ...]

    def __post_init__(self) -> None:
        if self.pr < 1 or self.pc < 1:
            raise ValueError("processor grid must be at least 1x1")
        if len(self.blocks) != self.pr * self.pc:
            raise ValueError(
                f"expected {self.pr * self.pc} blocks, got {len(self.blocks)}"
            )
        total = sum(b.area for b in self.blocks)
        if total != self.n * self.n:
            raise ValueError(f"blocks cover {total} points, grid has {self.n * self.n}")

    @property
    def machines(self) -> tuple[str, ...]:
        """Machines in row-major tile order."""
        return tuple(b.machine for b in self.blocks)

    def block_at(self, i: int, j: int) -> Block:
        """The tile at processor-grid coordinates ``(i, j)``."""
        if not (0 <= i < self.pr and 0 <= j < self.pc):
            raise IndexError(f"({i}, {j}) outside {self.pr}x{self.pc} grid")
        return self.blocks[i * self.pc + j]

    def neighbors(self, i: int, j: int) -> list[Block]:
        """The 4-neighbour tiles of ``(i, j)`` that exist."""
        out = []
        for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            ni, nj = i + di, j + dj
            if 0 <= ni < self.pr and 0 <= nj < self.pc:
                out.append(self.block_at(ni, nj))
        return out

    def border_points(self, i: int, j: int) -> int:
        """Border length (points) tile ``(i, j)`` exchanges per sweep."""
        blk = self.block_at(i, j)
        total = 0
        if i > 0:
            total += blk.col_count
        if i < self.pr - 1:
            total += blk.col_count
        if j > 0:
            total += blk.row_count
        if j < self.pc - 1:
            total += blk.row_count
        return total


def largest_remainder_rows(n: int, weights: Sequence[float]) -> list[int]:
    """Apportion ``n`` rows to weights by the largest-remainder method.

    Zero-weight entries receive zero rows; positive weights receive at
    least one row when enough rows exist.  Deterministic tie-break by
    index.  Raises if no positive weight exists or if there are more
    positive weights than rows.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    w = [max(0.0, float(x)) for x in weights]
    total = sum(w)
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    positive = [i for i, x in enumerate(w) if x > 0]
    if len(positive) > n:
        raise ValueError(f"{len(positive)} machines but only {n} rows")
    quotas = [n * x / total for x in w]
    rows = [int(math.floor(q)) for q in quotas]
    # Guarantee one row per positive-weight machine before distributing
    # remainders (a machine in the partition must own at least one row).
    for i in positive:
        if rows[i] == 0:
            rows[i] = 1
    deficit = n - sum(rows)
    if deficit < 0:
        # Rounding plus the one-row floor overshot: trim from the largest.
        order = sorted(positive, key=lambda i: rows[i], reverse=True)
        k = 0
        while deficit < 0:
            i = order[k % len(order)]
            if rows[i] > 1:
                rows[i] -= 1
                deficit += 1
            k += 1
    else:
        remainders = sorted(
            positive, key=lambda i: (quotas[i] - math.floor(quotas[i])), reverse=True
        )
        k = 0
        while deficit > 0:
            rows[remainders[k % len(remainders)]] += 1
            deficit -= 1
            k += 1
    assert sum(rows) == n
    return rows


def batched_largest_remainder_rows(grid_rows, areas, counts):
    """Vectorised :func:`largest_remainder_rows` over many strip orders.

    Parameters
    ----------
    grid_rows:
        ``(m,)`` int array — rows to apportion per candidate (the grid
        size ``n`` of each request's problem).
    areas:
        ``(m, n)`` fractional areas in strip order; slots at and beyond
        ``counts[i]`` are padding and must hold ``0.0``.  Every real slot
        must be positive (the planner only keeps loaded machines).
    counts:
        ``(m,)`` member count per row.

    Returns ``(rows, exact)``: the ``(m, n)`` integer row counts, and a
    boolean ``(m,)`` flag marking rows whose result provably equals the
    scalar function.  Rows where the scalar path would enter its overshoot
    trim loop (sequential, order-dependent) are flagged inexact instead of
    being approximated; callers re-run those through the scalar function.

    Bit-identity argument: the scalar total is a left-to-right Python sum,
    replicated by ``cumsum`` (padding adds exactly ``0.0``); quotas, floors
    and remainders are elementwise; the remainder distribution order is
    ``sorted(..., key=remainder, reverse=True)`` — a stable descending
    sort, i.e. ties keep ascending slot order, which is exactly
    ``argsort`` of the negated remainders with a stable kind.  The deficit
    after the one-row floor is < member count, so each of the first
    ``deficit`` slots in remainder order gains exactly one row.
    """
    areas = np.asarray(areas, dtype=float)
    m, n = areas.shape
    grid_rows = np.asarray(grid_rows)
    counts = np.asarray(counts)
    if np.any(np.isnan(areas)) or np.any(np.isinf(areas)):
        raise ValueError("areas must be finite")
    slots = np.arange(n)[None, :]
    valid = slots < counts[:, None]
    if np.any(~valid & (areas != 0.0)) or np.any(valid & ~(areas > 0.0)):
        raise ValueError("real slots must be positive, padding must be 0.0")

    total = np.cumsum(areas, axis=1)[:, -1]
    grid_f = grid_rows.astype(float)
    with np.errstate(invalid="ignore", divide="ignore"):
        quotas = grid_f[:, None] * areas / total[:, None]
    floors = np.floor(quotas)
    rows = np.where(valid & (floors == 0.0), 1.0, floors).astype(np.int64)
    rows = np.where(valid, rows, 0)
    deficit = grid_rows - rows.sum(axis=1)

    # The floor sum exceeds grid_rows - count, so 0 <= deficit < count for
    # every row the scalar path serves without trimming; negative deficits
    # (one-row floors overshooting tiny grids) go back to the scalar loop.
    exact = (deficit >= 0) & (deficit < counts)

    remainders = quotas - floors
    rank = np.argsort(np.where(valid, -remainders, np.inf), axis=1, kind="stable")
    gains = (slots < np.where(exact, deficit, 0)[:, None]).astype(np.int64)
    inc = np.zeros_like(rows)
    np.put_along_axis(inc, rank, gains, axis=1)
    rows += inc
    return rows, exact


def _strips_from_rows(n: int, machines: Sequence[str], rows: Sequence[int]) -> StripPartition:
    strips = []
    start = 0
    for machine, count in zip(machines, rows):
        if count <= 0:
            continue
        strips.append(Strip(machine=machine, row_start=start, row_count=count))
        start += count
    return StripPartition(n=n, strips=tuple(strips))


def uniform_strip(n: int, machines: Sequence[str]) -> StripPartition:
    """Equal-height strips, one per machine, in the given order."""
    machines = list(machines)
    if not machines:
        raise ValueError("need at least one machine")
    rows = largest_remainder_rows(n, [1.0] * len(machines))
    return _strips_from_rows(n, machines, rows)


def nonuniform_strip(
    n: int, machines: Sequence[str], weights: Sequence[float]
) -> StripPartition:
    """Compile-time non-uniform strips (Figure 4).

    Strip heights proportional to ``weights`` — in the paper, "parameterized
    by (non-uniform) CPU speeds and bandwidth for the workstation network",
    i.e. *nominal* capability, computed statically with no dynamic load
    information.
    """
    machines = list(machines)
    if len(machines) != len(weights):
        raise ValueError("machines and weights length mismatch")
    rows = largest_remainder_rows(n, weights)
    return _strips_from_rows(n, machines, rows)


def apples_strip(
    n: int,
    machines: Sequence[str],
    areas: Sequence[float],
    max_rows: Sequence[int | None] | None = None,
) -> StripPartition:
    """Materialise an AppLeS time-balanced allocation as integer strips.

    ``areas`` are the planner's fractional point counts per machine (in
    strip order); rows are apportioned by largest remainder.  Machines
    whose area rounds to zero are dropped from the partition.

    ``max_rows`` optionally caps each machine's row count (the integer
    image of a memory capacity): rounding overflow is shifted to machines
    with slack, so a capacity honoured by the fractional plan is still
    honoured after integerisation.
    """
    machines = list(machines)
    if len(machines) != len(areas):
        raise ValueError("machines and areas length mismatch")
    kept_idx = [i for i, a in enumerate(areas) if a > 0.0]
    if not kept_idx:
        raise ValueError("all areas are zero")
    kept_machines = [machines[i] for i in kept_idx]
    rows = largest_remainder_rows(n, [areas[i] for i in kept_idx])
    if max_rows is not None:
        if len(max_rows) != len(machines):
            raise ValueError("machines and max_rows length mismatch")
        caps = [max_rows[i] for i in kept_idx]
        # Shift rounding overflow from capped machines to ones with slack.
        for j, cap in enumerate(caps):
            if cap is not None and rows[j] > cap:
                overflow = rows[j] - int(cap)
                rows[j] = int(cap)
                receivers = sorted(
                    (i for i in range(len(rows)) if i != j),
                    key=lambda i: (
                        math.inf if caps[i] is None else caps[i] - rows[i]
                    ),
                    reverse=True,
                )
                for i in receivers:
                    if overflow == 0:
                        break
                    slack = (
                        overflow
                        if caps[i] is None
                        else max(0, min(overflow, int(caps[i]) - rows[i]))
                    )
                    rows[i] += slack
                    overflow -= slack
                if overflow > 0:
                    raise ValueError(
                        "row capacities cannot absorb rounding overflow"
                    )
    return _strips_from_rows(n, kept_machines, rows)


def generalized_block_partition(
    n: int, machines: Sequence[str], rates: Sequence[float], sweeps: int = 8
) -> BlockPartition:
    """A heterogeneous (generalised) block distribution.

    The paper's Jacobi2D user restricted planning to strips "due to the
    non-linearity (and hence complexity) of developing predictions for
    non-strip data decompositions" (§5); this implements the non-strip
    case they deferred.  Machines are arranged on a pr×pc grid and the
    row heights ``h_i`` / column widths ``w_j`` are fit by alternating
    normalisation so tile areas ``h_i · w_j`` track machine rates: the
    classic generalised block distribution.  Columns stay aligned across
    rows, so the five-point ghost exchange of
    :func:`repro.jacobi.runtime.execute_block_partition` applies
    unchanged.

    Machines are snake-ordered by rate before placement so each row group
    carries a similar aggregate rate, which is what makes the alternating
    fit converge to a useful layout.
    """
    machines = list(machines)
    if len(machines) != len(rates):
        raise ValueError("machines and rates length mismatch")
    if not machines:
        raise ValueError("need at least one machine")
    if any(r <= 0 for r in rates):
        raise ValueError("rates must be positive")
    if sweeps < 1:
        raise ValueError("sweeps must be >= 1")
    p = len(machines)
    pr = 1
    for d in range(1, int(math.isqrt(p)) + 1):
        if p % d == 0:
            pr = d
    pc = p // pr

    # Snake placement by descending rate balances row aggregates.
    order = sorted(range(p), key=lambda i: rates[i], reverse=True)
    grid_idx = [[0] * pc for _ in range(pr)]
    k = 0
    for i in range(pr):
        cols = range(pc) if i % 2 == 0 else range(pc - 1, -1, -1)
        for j in cols:
            grid_idx[i][j] = order[k]
            k += 1
    rate_grid = [[float(rates[grid_idx[i][j]]) for j in range(pc)] for i in range(pr)]

    # Alternating fit: h_i ∝ row aggregate, w_j ∝ column aggregate under h.
    h = [1.0 / pr] * pr
    w = [1.0 / pc] * pc
    for _ in range(sweeps):
        row_tot = [sum(rate_grid[i]) for i in range(pr)]
        total = sum(row_tot)
        h = [rt / total for rt in row_tot]
        col_tot = [sum(rate_grid[i][j] for i in range(pr)) for j in range(pc)]
        total = sum(col_tot)
        w = [ct / total for ct in col_tot]

    row_sizes = largest_remainder_rows(n, h)
    col_sizes = largest_remainder_rows(n, w)
    blocks = []
    r0 = 0
    for i in range(pr):
        c0 = 0
        for j in range(pc):
            blocks.append(
                Block(
                    machine=machines[grid_idx[i][j]],
                    row_start=r0,
                    row_count=row_sizes[i],
                    col_start=c0,
                    col_count=col_sizes[j],
                )
            )
            c0 += col_sizes[j]
        r0 += row_sizes[i]
    return BlockPartition(n=n, pr=pr, pc=pc, blocks=tuple(blocks))


def blocked_partition(n: int, machines: Sequence[str]) -> BlockPartition:
    """The HPF Uniform/Blocked baseline: a near-square pr×pc grid of equal tiles.

    ``pr`` is the largest divisor of ``len(machines)`` not exceeding its
    square root, so 8 machines give a 2×4 grid, 4 give 2×2, primes give
    1×p (degenerating to uniform strips, as HPF does).
    """
    machines = list(machines)
    p = len(machines)
    if p < 1:
        raise ValueError("need at least one machine")
    pr = 1
    for d in range(1, int(math.isqrt(p)) + 1):
        if p % d == 0:
            pr = d
    pc = p // pr
    row_sizes = largest_remainder_rows(n, [1.0] * pr)
    col_sizes = largest_remainder_rows(n, [1.0] * pc)
    blocks = []
    r0 = 0
    idx = 0
    for i in range(pr):
        c0 = 0
        for j in range(pc):
            blocks.append(
                Block(
                    machine=machines[idx],
                    row_start=r0,
                    row_count=row_sizes[i],
                    col_start=c0,
                    col_count=col_sizes[j],
                )
            )
            c0 += col_sizes[j]
            idx += 1
        r0 += row_sizes[i]
    return BlockPartition(n=n, pr=pr, pc=pc, blocks=tuple(blocks))

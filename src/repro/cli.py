"""Command-line interface: run any of the paper's experiments.

Usage::

    python -m repro <experiment> [options]

Experiments
-----------
``fig34``      Figures 3 & 4: the AppLeS and static partitions side by side.
``fig5``       Figure 5: AppLeS vs Strip vs Blocked execution times.
``fig6``       Figure 6: memory-aware scheduling with the SP-2 pair.
``react``      §2.3: single-site vs pipelined 3D-REACT + pipeline sweep.
``nile``       §2.1: the Site Manager's skim-vs-remote decision sweep.
``nws``        §3.6: forecaster-quality comparison across load families.
``info``       ABL-A2: nominal vs NWS vs oracle information.
``selection``  ABL-A3: subset selection vs use-everything vs best single.
``adaptive``   ABL-A4: one-shot vs adaptive rescheduling (extension).
``multiapp``   MULTI-A5: two applications sharing the metacomputer (extension).
``contention`` CONTEND: many agents deciding together via the scheduling
               service, each then running under the others' load (extension).
``metrics``    METRIC-A6: three user metrics, three schedules (§3.1).
``decomposition``  ABL-A7: strip vs generalised-block planning (extension).
``all``        Everything above, in order.
``obs-report`` Summarise (or diff) a JSONL trace written by ``--trace``.

Every experiment accepts ``--trace PATH`` (write a ``repro.obs`` trace of
the run) and ``--quick`` (a reduced preset for smoke tests); both are
forwarded by ``all`` along with every other shared flag.  The
simulation-backed figure sweeps (``fig5``, ``fig6``) also accept
``--replicates N``: N independently-seeded replicate worlds executed in
one ensemble pass (:mod:`repro.sim.execution_ensemble`) and reported as
mean ± confidence interval per size.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import Any, Callable, Sequence

from repro.experiments import (
    run_adaptive_ablation,
    run_decomposition_ablation,
    run_fig5,
    run_fig5_replicated,
    run_fig6,
    run_fig6_replicated,
    run_fig34,
    run_information_ablation,
    run_metrics_comparison,
    run_multiapp,
    run_nile_skim,
    run_nws_comparison,
    run_react,
    run_selection_ablation,
    run_service_contention,
)
from repro.obs.report import read_trace, render_report, trace_diff
from repro.obs.trace import tracing

__all__ = ["main", "build_parser"]


def _sizes(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.split(",") if x)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"sizes must be comma-separated integers, got {text!r}"
        ) from None


def _cmd_fig34(args: argparse.Namespace) -> str:
    result = run_fig34(n=args.n, seed=args.seed)
    return result.table().render() + "\n\n" + result.ascii_partition("apples")


def _cmd_fig5(args: argparse.Namespace) -> str:
    if args.replicates > 1:
        return run_fig5_replicated(
            sizes=args.sizes, iterations=args.iterations, repeats=args.repeats,
            seed=args.seed, replicates=args.replicates,
        ).table().render()
    result = run_fig5(
        sizes=args.sizes, iterations=args.iterations, repeats=args.repeats,
        seed=args.seed, workers=args.workers,
    )
    lo, hi = result.ratio_range
    return (
        result.table().render()
        + f"\n\nbaseline/AppLeS ratio range: {lo:.2f}x – {hi:.2f}x (paper: 2x – 8x)"
    )


def _cmd_fig6(args: argparse.Namespace) -> str:
    if args.replicates > 1:
        return run_fig6_replicated(
            sizes=args.sizes, iterations=args.iterations, seed=args.seed,
            replicates=args.replicates,
        ).table().render()
    result = run_fig6(sizes=args.sizes, iterations=args.iterations, seed=args.seed,
                      workers=args.workers)
    return result.table().render()


def _cmd_react(args: argparse.Namespace) -> str:
    result = run_react(seed=args.seed)
    return (
        result.timing_table().render()
        + f"\n\nspeedup over best single site: {result.speedup:.2f}x\n\n"
        + result.sweep_table().render()
    )


def _cmd_nile(args: argparse.Namespace) -> str:
    result = run_nile_skim(nevents=args.events, seed=args.seed)
    return result.table().render()


def _cmd_nws(args: argparse.Namespace) -> str:
    result = run_nws_comparison(nsamples=args.samples, seed=args.seed,
                                workers=args.workers)
    lines = [result.table().render(), ""]
    for process in sorted(result.mse):
        lines.append(
            f"best for {process}: {result.best_for(process)} "
            f"(ensemble regret {result.ensemble_regret(process):.2f}x)"
        )
    return "\n".join(lines)


def _cmd_info(args: argparse.Namespace) -> str:
    return run_information_ablation(
        n=args.n, seed=args.seed, workers=args.workers
    ).table().render()


def _cmd_selection(args: argparse.Namespace) -> str:
    return run_selection_ablation(
        n=args.n, seed=args.seed, workers=args.workers
    ).table().render()


def _cmd_adaptive(args: argparse.Namespace) -> str:
    result = run_adaptive_ablation(n=args.n, workers=args.workers)
    return (
        result.table().render()
        + f"\n\nadaptive improvement: {result.improvement:.2f}x"
    )


def _cmd_multiapp(args: argparse.Namespace) -> str:
    result = run_multiapp(n=args.n, seed=args.seed, workers=args.workers)
    return (
        result.table().render()
        + f"\n\naware speedup over oblivious: {result.improvement:.2f}x"
    )


def _cmd_contention(args: argparse.Namespace) -> str:
    result = run_service_contention(
        napps=args.apps, n=args.n, seed=args.seed, workers=args.workers,
    )
    return (
        result.table().render()
        + f"\n\nmean actual/predicted: {result.mean_degradation:.2f}x "
        f"(service answers identical to solo agents: "
        f"{result.service_matches_solo})"
    )


def _cmd_metrics(args: argparse.Namespace) -> str:
    return run_metrics_comparison(n=args.n, seed=args.seed).table().render()


def _cmd_decomposition(args: argparse.Namespace) -> str:
    return run_decomposition_ablation(n=args.n, seed=args.seed).table().render()


def _cmd_obs_report(args: argparse.Namespace) -> str:
    data = read_trace(args.trace)
    if args.diff is not None:
        return trace_diff(data, read_trace(args.diff),
                          label_a=str(args.trace), label_b=str(args.diff)).render()
    return render_report(data)


# Reduced presets applied by --quick.  Only flags still at their parser
# default are overridden, so explicit flags always win over the preset.
_QUICK: dict[str, dict[str, Any]] = {
    "fig34": {"n": 1000},
    "fig5": {"sizes": (1000, 1400), "iterations": 10, "repeats": 2},
    "fig6": {"sizes": (1000, 2000), "iterations": 10},
    "nile": {"events": 50_000},
    "nws": {"samples": 150},
    "info": {"n": 800},
    "selection": {"n": 800},
    "adaptive": {"n": 800},
    "multiapp": {"n": 800},
    "contention": {"n": 800, "apps": 3},
    "metrics": {"n": 800},
    "decomposition": {"n": 800},
}


def _apply_quick(args: argparse.Namespace, name: str,
                 defaults: argparse.Namespace) -> None:
    """Overwrite default-valued flags with the quick preset for ``name``."""
    if not getattr(args, "quick", False):
        return
    for key, value in _QUICK.get(name, {}).items():
        if getattr(args, key, None) == getattr(defaults, key, None):
            setattr(args, key, value)


_COMMANDS: dict[str, Callable[[argparse.Namespace], str]] = {
    "fig34": _cmd_fig34,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "react": _cmd_react,
    "nile": _cmd_nile,
    "nws": _cmd_nws,
    "info": _cmd_info,
    "selection": _cmd_selection,
    "adaptive": _cmd_adaptive,
    "multiapp": _cmd_multiapp,
    "contention": _cmd_contention,
    "metrics": _cmd_metrics,
    "decomposition": _cmd_decomposition,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the experiments of Berman & Wolski, HPDC 1996.",
    )
    sub = parser.add_subparsers(dest="experiment", required=True)

    def common(p: argparse.ArgumentParser, n_default: int | None = None) -> None:
        p.add_argument("--seed", type=int, default=1996,
                       help="testbed load seed (default 1996)")
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes for trial parallelism "
                            "(1 = serial, -1 = all CPUs; results are "
                            "identical for any value)")
        p.add_argument("--trace", metavar="PATH", default=None,
                       help="write a repro.obs JSONL trace of the run to "
                            "PATH (results are bit-identical with tracing "
                            "on or off)")
        p.add_argument("--quick", action="store_true",
                       help="reduced preset for smoke tests (explicit "
                            "flags still win)")
        if n_default is not None:
            p.add_argument("--n", type=int, default=n_default,
                           help=f"problem edge length (default {n_default})")

    p = sub.add_parser("fig34", help="Figures 3 & 4: the two partitions")
    common(p, n_default=2000)

    def replicates_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--replicates", type=int, default=1,
                       help="independently-seeded replicate worlds executed "
                            "in one ensemble pass; >1 reports mean ± CI "
                            "per size (default 1: the point-estimate run)")

    p = sub.add_parser("fig5", help="Figure 5: execution-time comparison")
    common(p)
    replicates_flag(p)
    p.add_argument("--sizes", type=_sizes,
                   default=(1000, 1200, 1400, 1600, 1800, 2000),
                   help="comma-separated problem sizes")
    p.add_argument("--iterations", type=int, default=60)
    p.add_argument("--repeats", type=int, default=3)

    p = sub.add_parser("fig6", help="Figure 6: memory-aware scheduling")
    common(p)
    replicates_flag(p)
    p.add_argument("--sizes", type=_sizes,
                   default=(1000, 2000, 3000, 3500, 3700, 3900, 4200, 4600))
    p.add_argument("--iterations", type=int, default=30)

    p = sub.add_parser("react", help="3D-REACT timings and pipeline sweep")
    common(p)

    p = sub.add_parser("nile", help="NILE skim-vs-remote decisions")
    common(p)
    p.add_argument("--events", type=int, default=500_000)

    p = sub.add_parser("nws", help="forecaster-quality comparison")
    common(p)
    p.add_argument("--samples", type=int, default=600)

    for name, n_default, help_text in (
        ("info", 1600, "information ablation (nominal/NWS/oracle)"),
        ("selection", 1600, "resource-selection ablation"),
        ("adaptive", 1200, "adaptive rescheduling vs one-shot"),
        ("multiapp", 1600, "two applications sharing the metacomputer"),
        ("metrics", 1600, "three user metrics, three schedules"),
        ("decomposition", 1600, "strip vs generalised-block planning"),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p, n_default=n_default)

    p = sub.add_parser(
        "contention",
        help="many agents deciding together via the scheduling service",
    )
    common(p, n_default=1200)
    p.add_argument("--apps", type=int, default=5,
                   help="number of applications in the batch (default 5)")

    p = sub.add_parser("all", help="run every experiment in order")
    common(p)
    replicates_flag(p)  # forwarded to the subcommands that understand it

    p = sub.add_parser("obs-report",
                       help="summarise (or diff) a trace written by --trace")
    p.add_argument("trace", help="path to a repro.obs JSONL trace")
    p.add_argument("--diff", metavar="OTHER", default=None,
                   help="second trace: print a quantity-by-quantity diff "
                        "instead of a report")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "obs-report":
        print(_cmd_obs_report(args))
        return 0
    trace_path = getattr(args, "trace", None)
    # One tracer for the whole invocation: `all` merges every experiment
    # into a single trace, exported when the block exits.
    with tracing(path=trace_path) if trace_path else nullcontext():
        if args.experiment == "all":
            for name in _COMMANDS:
                # Forward every shared flag the subcommand understands —
                # generically, so new common() flags never need enumerating
                # here again.
                sub_args = parser.parse_args([name])
                defaults = argparse.Namespace(**vars(sub_args))
                for key, value in vars(args).items():
                    if key != "experiment" and hasattr(sub_args, key):
                        setattr(sub_args, key, value)
                _apply_quick(sub_args, name, defaults)
                print(f"\n===== {name} =====")
                print(_COMMANDS[name](sub_args))
            return 0
        _apply_quick(args, args.experiment, parser.parse_args([args.experiment]))
        print(_COMMANDS[args.experiment](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: run any of the paper's experiments.

Usage::

    python -m repro <experiment> [options]

Experiments
-----------
``fig34``      Figures 3 & 4: the AppLeS and static partitions side by side.
``fig5``       Figure 5: AppLeS vs Strip vs Blocked execution times.
``fig6``       Figure 6: memory-aware scheduling with the SP-2 pair.
``react``      §2.3: single-site vs pipelined 3D-REACT + pipeline sweep.
``nile``       §2.1: the Site Manager's skim-vs-remote decision sweep.
``nws``        §3.6: forecaster-quality comparison across load families.
``info``       ABL-A2: nominal vs NWS vs oracle information.
``selection``  ABL-A3: subset selection vs use-everything vs best single.
``adaptive``   ABL-A4: one-shot vs adaptive rescheduling (extension).
``multiapp``   MULTI-A5: two applications sharing the metacomputer (extension).
``contention`` CONTEND: many agents deciding together via the scheduling
               service, each then running under the others' load (extension).
``metrics``    METRIC-A6: three user metrics, three schedules (§3.1).
``decomposition``  ABL-A7: strip vs generalised-block planning (extension).
``all``        Everything above, in order.
``serve``      Always-on sharded scheduling daemon under synthetic load
               (``--smoke`` runs the short self-checking preset).
``arena``      Scheduler arena: generate frozen instances, score the
               policy portfolio, verify emitted allocations, report
               regret vs the exhaustive oracle (``--smoke`` runs the
               short self-checking preset).
``obs-report`` Summarise (or diff) a JSONL trace written by ``--trace``.

Every experiment accepts ``--trace PATH`` (write a ``repro.obs`` trace of
the run) and ``--quick`` (a reduced preset for smoke tests); both are
forwarded by ``all`` along with every other shared flag.  The
simulation-backed figure sweeps (``fig5``, ``fig6``) also accept
``--replicates N``: N independently-seeded replicate worlds executed in
one ensemble pass (:mod:`repro.sim.execution_ensemble`) and reported as
mean ± confidence interval per size.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import nullcontext
from typing import Any, Callable, Sequence

from repro.experiments import (
    run_adaptive_ablation,
    run_decomposition_ablation,
    run_fig5,
    run_fig5_replicated,
    run_fig6,
    run_fig6_replicated,
    run_fig34,
    run_information_ablation,
    run_metrics_comparison,
    run_multiapp,
    run_nile_skim,
    run_nws_comparison,
    run_react,
    run_selection_ablation,
    run_service_contention,
)
from repro.obs.report import read_trace, render_report, trace_diff
from repro.obs.trace import tracing

__all__ = ["main", "build_parser"]


def _sizes(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.split(",") if x)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"sizes must be comma-separated integers, got {text!r}"
        ) from None


def _cmd_fig34(args: argparse.Namespace) -> str:
    result = run_fig34(n=args.n, seed=args.seed)
    return result.table().render() + "\n\n" + result.ascii_partition("apples")


def _cmd_fig5(args: argparse.Namespace) -> str:
    if args.replicates > 1:
        return run_fig5_replicated(
            sizes=args.sizes, iterations=args.iterations, repeats=args.repeats,
            seed=args.seed, replicates=args.replicates,
        ).table().render()
    result = run_fig5(
        sizes=args.sizes, iterations=args.iterations, repeats=args.repeats,
        seed=args.seed, workers=args.workers,
    )
    lo, hi = result.ratio_range
    return (
        result.table().render()
        + f"\n\nbaseline/AppLeS ratio range: {lo:.2f}x – {hi:.2f}x (paper: 2x – 8x)"
    )


def _cmd_fig6(args: argparse.Namespace) -> str:
    if args.replicates > 1:
        return run_fig6_replicated(
            sizes=args.sizes, iterations=args.iterations, seed=args.seed,
            replicates=args.replicates,
        ).table().render()
    result = run_fig6(sizes=args.sizes, iterations=args.iterations, seed=args.seed,
                      workers=args.workers)
    return result.table().render()


def _cmd_react(args: argparse.Namespace) -> str:
    result = run_react(seed=args.seed)
    return (
        result.timing_table().render()
        + f"\n\nspeedup over best single site: {result.speedup:.2f}x\n\n"
        + result.sweep_table().render()
    )


def _cmd_nile(args: argparse.Namespace) -> str:
    result = run_nile_skim(nevents=args.events, seed=args.seed)
    return result.table().render()


def _cmd_nws(args: argparse.Namespace) -> str:
    result = run_nws_comparison(nsamples=args.samples, seed=args.seed,
                                workers=args.workers)
    lines = [result.table().render(), ""]
    for process in sorted(result.mse):
        lines.append(
            f"best for {process}: {result.best_for(process)} "
            f"(ensemble regret {result.ensemble_regret(process):.2f}x)"
        )
    return "\n".join(lines)


def _cmd_info(args: argparse.Namespace) -> str:
    return run_information_ablation(
        n=args.n, seed=args.seed, workers=args.workers
    ).table().render()


def _cmd_selection(args: argparse.Namespace) -> str:
    return run_selection_ablation(
        n=args.n, seed=args.seed, workers=args.workers
    ).table().render()


def _cmd_adaptive(args: argparse.Namespace) -> str:
    result = run_adaptive_ablation(n=args.n, workers=args.workers)
    return (
        result.table().render()
        + f"\n\nadaptive improvement: {result.improvement:.2f}x"
    )


def _cmd_multiapp(args: argparse.Namespace) -> str:
    result = run_multiapp(n=args.n, seed=args.seed, workers=args.workers)
    return (
        result.table().render()
        + f"\n\naware speedup over oblivious: {result.improvement:.2f}x"
    )


def _cmd_contention(args: argparse.Namespace) -> str:
    result = run_service_contention(
        napps=args.apps, n=args.n, seed=args.seed, workers=args.workers,
    )
    return (
        result.table().render()
        + f"\n\nmean actual/predicted: {result.mean_degradation:.2f}x "
        f"(service answers identical to solo agents: "
        f"{result.service_matches_solo})"
    )


def _cmd_metrics(args: argparse.Namespace) -> str:
    return run_metrics_comparison(n=args.n, seed=args.seed).table().render()


def _cmd_decomposition(args: argparse.Namespace) -> str:
    return run_decomposition_ablation(n=args.n, seed=args.seed).table().render()


# Pools the daemon can serve, by shard name.  All take a ``seed`` kwarg.
def _pools() -> dict[str, Callable[..., Any]]:
    from repro.sim import casa_testbed, nile_testbed, sdsc_pcl_testbed

    return {"sdsc": sdsc_pcl_testbed, "casa": casa_testbed, "nile": nile_testbed}


def _cmd_serve(args: argparse.Namespace) -> str:
    """Drive the always-on daemon with seeded open-loop traffic, then report.

    With ``--smoke``: a reduced preset that additionally re-derives every
    answered request's decision through a fresh one-shot
    ``SchedulingService`` and fails loudly on any mismatch — the CI
    health check for the daemon path (run it under both gate modes).
    """
    from repro.nws import NetworkWeatherService
    from repro.service import SchedulingDaemon, SchedulingService, ShardSpec
    from repro.service.daemon import ANSWERED, FAILED
    from repro.service.loadgen import (
        SyntheticPopulation,
        open_loop_events,
        run_open_loop,
    )

    pools = _pools()
    names = [s for s in args.shards.split(",") if s]
    unknown = [s for s in names if s not in pools]
    if unknown:
        raise SystemExit(
            f"unknown pool(s) {unknown}; available: {sorted(pools)}"
        )
    warmup_s = 600.0
    n_requests = 24 if args.smoke else args.requests
    speed = 50.0 if args.smoke else args.speed
    specs = [
        ShardSpec(name, pools[name], seed=args.seed, warmup_s=warmup_s)
        for name in names
    ]
    population = SyntheticPopulation(
        names, seed=args.seed + 17, base_at=warmup_s,
        instant_every=0 if args.smoke else 128,
    )
    events = open_loop_events(
        population, rate_hz=args.rate, n_requests=n_requests
    )
    daemon = SchedulingDaemon(
        specs, queue_capacity=args.queue_capacity,
        workers=max(1, args.workers),
    )
    daemon.start()
    t0 = time.perf_counter()
    tickets = run_open_loop(daemon, events, speed=speed)
    daemon.drain(timeout=600.0)
    elapsed = time.perf_counter() - t0
    daemon.shutdown()

    replies = [t.result(0.0) for t in tickets]
    answered = [r for r in replies if r.status == ANSWERED]
    failed = [r for r in replies if r.status == FAILED]
    latencies = sorted(r.latency_s for r in answered)

    def pct(q: float) -> float:
        if not latencies:
            return float("nan")
        return latencies[min(len(latencies) - 1,
                             int(round(q * (len(latencies) - 1))))] * 1e3

    lines = [
        f"scheduling daemon: {len(names)} shard(s), "
        f"{n_requests} requests @ {args.rate:.0f} req/s offered "
        f"(speed {speed:g}x), workers={max(1, args.workers)}",
        f"answered {len(answered)}  shed {sum(r.status == 'shed' for r in replies)}"
        f"  rejected {sum(r.status == 'rejected' for r in replies)}"
        f"  failed {len(failed)}"
        f"  in {elapsed:.2f}s ({len(answered) / elapsed:.1f} dec/s)",
        f"latency p50 {pct(0.50):.1f} ms  p99 {pct(0.99):.1f} ms",
        "",
        f"{'shard':>8}{'answered':>10}{'shed':>6}{'batches':>9}{'max batch':>11}",
    ]
    for name, row in sorted(daemon.stats().items()):
        lines.append(
            f"{name:>8}{row['answered']:>10}{row['shed']:>6}"
            f"{row['batches']:>9}{row['max_batch']:>11}"
        )

    if failed:
        raise SystemExit("daemon reported failed batches:\n" + "\n".join(lines))
    if args.smoke:
        if not answered:
            raise SystemExit("smoke answered nothing:\n" + "\n".join(lines))
        # Re-derive every answered decision through a fresh one-shot
        # service on a private world: the daemon must be bit-identical.
        by_shard: dict[str, list] = {}
        for ticket in tickets:
            reply = ticket.result(0.0)
            if reply.status == ANSWERED:
                by_shard.setdefault(ticket.shard, []).append((ticket.request, reply))
        checked = 0
        for name, pairs in sorted(by_shard.items()):
            testbed = pools[name](seed=args.seed)
            nws = NetworkWeatherService.for_testbed(testbed, seed=args.seed + 1)
            nws.warmup(warmup_s)
            reference = SchedulingService(testbed, nws).decide(
                [request for request, _ in pairs]
            )
            for (request, reply), ref in zip(pairs, reference):
                same = (
                    reply.answer.best_objective == ref.best_objective
                    and reply.answer.predicted_time == ref.predicted_time
                    and reply.answer.machines == ref.machines
                )
                if not same:
                    raise SystemExit(
                        f"daemon answer diverged from SchedulingService on "
                        f"shard {name!r}: {request!r}"
                    )
                checked += 1
        lines.append("")
        lines.append(
            f"smoke: {checked} answers re-derived through a one-shot "
            "service — bit-identical"
        )
    return "\n".join(lines)


def _cmd_arena(args: argparse.Namespace) -> str:
    """Drive the scheduler arena: generate / score / verify / report.

    The four actions share one contract: instances and allocations live in
    plain JSONL files, and everything downstream of ``score`` is driven by
    the standalone verifier alone — ``verify`` and ``report`` work on
    files produced by processes this one has never imported.
    """
    from repro import arena

    if args.smoke:
        return _arena_smoke(args)
    if args.action is None:
        raise SystemExit(
            "arena needs an action (generate / score / verify / report) "
            "or --smoke"
        )
    classes = tuple(c for c in args.classes.split(",") if c)
    policies = tuple(p for p in args.policies.split(",") if p)

    if args.action == "generate":
        instances = []
        for klass in classes:
            kwargs = {} if args.sizes is None else {"sizes": args.sizes}
            instances.extend(
                arena.generate_instances(
                    klass, args.per_class, seed=args.seed,
                    iterations=args.iterations, **kwargs,
                )
            )
        out = args.out or "arena_instances.jsonl"
        arena.save_instances(out, instances)
        return (
            f"wrote {len(instances)} instances "
            f"({', '.join(classes)}) to {out}"
        )

    if args.instances is None:
        raise SystemExit(f"arena {args.action} requires --instances PATH")
    instances = arena.load_instances(args.instances)

    if args.action == "score":
        allocations = arena.run_policies(instances, policies)
        out = args.out or "arena_allocations.jsonl"
        arena.save_allocations(out, allocations)
        result = arena.score_allocations(instances, allocations)
        return (
            f"wrote {len(allocations)} allocations to {out}\n\n"
            + result.table()
        )

    if args.allocations is None:
        raise SystemExit(f"arena {args.action} requires --allocations PATH")
    allocations = arena.load_allocations(args.allocations)

    if args.action == "verify":
        lines = []
        rejected = 0
        for alloc in allocations:
            inst = next(
                (i for i in instances if i.instance_id == alloc.instance_id),
                None,
            )
            if inst is None:
                raise SystemExit(
                    f"allocation references unknown instance "
                    f"{alloc.instance_id!r}"
                )
            report = arena.verify_allocation(inst, alloc)
            rejected += not report.feasible
            verdict = (
                f"ok  objective={report.objective:.6f}"
                if report.feasible
                else f"REJECTED ({report.reason})"
            )
            lines.append(f"{alloc.instance_id}  {alloc.policy:<12} {verdict}")
        lines.append("")
        lines.append(
            f"{len(allocations)} allocations verified, {rejected} rejected"
        )
        return "\n".join(lines)

    # report: aggregate regret purely from the two files.
    return arena.score_allocations(instances, allocations).table()


def _arena_smoke(args: argparse.Namespace) -> str:
    """Tiny end-to-end self-check (run it under both gate modes in CI).

    Generates two 8-host instances, runs the full policy portfolio,
    round-trips everything through JSONL, and asserts the arena's core
    invariants: verifier/decision bit-identity, regret >= 0 everywhere,
    and exactly 0 for the exhaustive oracle.
    """
    import tempfile
    from pathlib import Path

    from repro import arena

    instances = arena.generate_instances(
        "sdsc8", 2, seed=args.seed, sizes=(400,), iterations=20
    )
    allocations = arena.run_policies(instances)

    with tempfile.TemporaryDirectory() as tmp:
        inst_path = Path(tmp) / "instances.jsonl"
        alloc_path = Path(tmp) / "allocations.jsonl"
        arena.save_instances(inst_path, instances)
        arena.save_allocations(alloc_path, allocations)
        if arena.load_instances(inst_path) != instances:
            raise SystemExit("smoke: instance JSONL round-trip diverged")
        if arena.load_allocations(alloc_path) != allocations:
            raise SystemExit("smoke: allocation JSONL round-trip diverged")

    by_id = {inst.instance_id: inst for inst in instances}
    checked = 0
    for alloc in allocations:
        report = arena.verify_allocation(by_id[alloc.instance_id], alloc)
        if alloc.policy != "static":
            if not report.feasible:
                raise SystemExit(
                    f"smoke: {alloc.policy} emitted an infeasible allocation "
                    f"({report.reason})"
                )
            if report.objective != alloc.claimed_objective:
                raise SystemExit(
                    f"smoke: verifier objective {report.objective!r} != "
                    f"decision objective {alloc.claimed_objective!r} "
                    f"for {alloc.policy} on {alloc.instance_id}"
                )
            checked += 1

    result = arena.score_allocations(instances, allocations)
    for score in result.scores:
        if any(r < 0.0 for r in score.regrets):
            raise SystemExit(f"smoke: negative regret for {score.policy}")
        if score.policy == "exhaustive" and score.regrets and (
            score.mean_regret != 0.0
        ):
            raise SystemExit("smoke: exhaustive oracle has nonzero regret")
    return (
        result.table()
        + f"\n\nsmoke: {checked} decision objectives re-derived by the "
        "standalone verifier — bit-identical; JSONL round-trips exact"
    )


def _cmd_obs_report(args: argparse.Namespace) -> str:
    data = read_trace(args.trace)
    if args.diff is not None:
        return trace_diff(data, read_trace(args.diff),
                          label_a=str(args.trace), label_b=str(args.diff)).render()
    return render_report(data)


# Reduced presets applied by --quick.  Only flags still at their parser
# default are overridden, so explicit flags always win over the preset.
_QUICK: dict[str, dict[str, Any]] = {
    "fig34": {"n": 1000},
    "fig5": {"sizes": (1000, 1400), "iterations": 10, "repeats": 2},
    "fig6": {"sizes": (1000, 2000), "iterations": 10},
    "nile": {"events": 50_000},
    "nws": {"samples": 150},
    "info": {"n": 800},
    "selection": {"n": 800},
    "adaptive": {"n": 800},
    "multiapp": {"n": 800},
    "contention": {"n": 800, "apps": 3},
    "metrics": {"n": 800},
    "decomposition": {"n": 800},
    "arena": {"per_class": 3, "sizes": (400, 700), "iterations": 20},
}


def _apply_quick(args: argparse.Namespace, name: str,
                 defaults: argparse.Namespace) -> None:
    """Overwrite default-valued flags with the quick preset for ``name``."""
    if not getattr(args, "quick", False):
        return
    for key, value in _QUICK.get(name, {}).items():
        if getattr(args, key, None) == getattr(defaults, key, None):
            setattr(args, key, value)


_COMMANDS: dict[str, Callable[[argparse.Namespace], str]] = {
    "fig34": _cmd_fig34,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "react": _cmd_react,
    "nile": _cmd_nile,
    "nws": _cmd_nws,
    "info": _cmd_info,
    "selection": _cmd_selection,
    "adaptive": _cmd_adaptive,
    "multiapp": _cmd_multiapp,
    "contention": _cmd_contention,
    "metrics": _cmd_metrics,
    "decomposition": _cmd_decomposition,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the experiments of Berman & Wolski, HPDC 1996.",
    )
    sub = parser.add_subparsers(dest="experiment", required=True)

    def common(p: argparse.ArgumentParser, n_default: int | None = None) -> None:
        p.add_argument("--seed", type=int, default=1996,
                       help="testbed load seed (default 1996)")
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes for trial parallelism "
                            "(1 = serial, -1 = all CPUs; results are "
                            "identical for any value)")
        p.add_argument("--trace", metavar="PATH", default=None,
                       help="write a repro.obs JSONL trace of the run to "
                            "PATH (results are bit-identical with tracing "
                            "on or off)")
        p.add_argument("--quick", action="store_true",
                       help="reduced preset for smoke tests (explicit "
                            "flags still win)")
        if n_default is not None:
            p.add_argument("--n", type=int, default=n_default,
                           help=f"problem edge length (default {n_default})")

    p = sub.add_parser("fig34", help="Figures 3 & 4: the two partitions")
    common(p, n_default=2000)

    def replicates_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--replicates", type=int, default=1,
                       help="independently-seeded replicate worlds executed "
                            "in one ensemble pass; >1 reports mean ± CI "
                            "per size (default 1: the point-estimate run)")

    p = sub.add_parser("fig5", help="Figure 5: execution-time comparison")
    common(p)
    replicates_flag(p)
    p.add_argument("--sizes", type=_sizes,
                   default=(1000, 1200, 1400, 1600, 1800, 2000),
                   help="comma-separated problem sizes")
    p.add_argument("--iterations", type=int, default=60)
    p.add_argument("--repeats", type=int, default=3)

    p = sub.add_parser("fig6", help="Figure 6: memory-aware scheduling")
    common(p)
    replicates_flag(p)
    p.add_argument("--sizes", type=_sizes,
                   default=(1000, 2000, 3000, 3500, 3700, 3900, 4200, 4600))
    p.add_argument("--iterations", type=int, default=30)

    p = sub.add_parser("react", help="3D-REACT timings and pipeline sweep")
    common(p)

    p = sub.add_parser("nile", help="NILE skim-vs-remote decisions")
    common(p)
    p.add_argument("--events", type=int, default=500_000)

    p = sub.add_parser("nws", help="forecaster-quality comparison")
    common(p)
    p.add_argument("--samples", type=int, default=600)

    for name, n_default, help_text in (
        ("info", 1600, "information ablation (nominal/NWS/oracle)"),
        ("selection", 1600, "resource-selection ablation"),
        ("adaptive", 1200, "adaptive rescheduling vs one-shot"),
        ("multiapp", 1600, "two applications sharing the metacomputer"),
        ("metrics", 1600, "three user metrics, three schedules"),
        ("decomposition", 1600, "strip vs generalised-block planning"),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p, n_default=n_default)

    p = sub.add_parser(
        "contention",
        help="many agents deciding together via the scheduling service",
    )
    common(p, n_default=1200)
    p.add_argument("--apps", type=int, default=5,
                   help="number of applications in the batch (default 5)")

    p = sub.add_parser("all", help="run every experiment in order")
    common(p)
    replicates_flag(p)  # forwarded to the subcommands that understand it

    p = sub.add_parser(
        "serve",
        help="always-on sharded scheduling daemon under synthetic load",
    )
    common(p)
    p.add_argument("--shards", default="sdsc,casa",
                   help="comma-separated pool names to serve "
                        "(sdsc, casa, nile; default sdsc,casa)")
    p.add_argument("--requests", type=int, default=200,
                   help="open-loop requests to offer (default 200)")
    p.add_argument("--rate", type=float, default=50.0,
                   help="offered arrival rate in requests/sec (default 50)")
    p.add_argument("--speed", type=float, default=1.0,
                   help="replay compression: 10 plays the arrival plan "
                        "10x faster (default 1)")
    p.add_argument("--queue-capacity", type=int, default=256,
                   dest="queue_capacity",
                   help="per-shard admission queue bound (default 256)")
    p.add_argument("--smoke", action="store_true",
                   help="reduced self-checking run: 24 requests at 50x "
                        "speed, every answer re-derived through a "
                        "one-shot SchedulingService (CI health check)")

    p = sub.add_parser(
        "arena",
        help="scheduler arena: instance dataset, verifier, regret report",
    )
    common(p)
    p.add_argument("action", nargs="?", default=None,
                   choices=("generate", "score", "verify", "report"),
                   help="generate instances / run + score the portfolio / "
                        "verify saved allocations / report regret from "
                        "saved files")
    p.add_argument("--classes", default="sdsc8,synth14",
                   help="comma-separated instance classes (default "
                        "sdsc8,synth14)")
    p.add_argument("--per-class", type=int, default=6, dest="per_class",
                   help="instances generated per class (default 6)")
    p.add_argument("--sizes", type=_sizes, default=None,
                   help="comma-separated problem edge lengths cycled "
                        "across each class's instances")
    p.add_argument("--iterations", type=int, default=40,
                   help="Jacobi iterations per instance (default 40)")
    p.add_argument("--instances", metavar="PATH", default=None,
                   help="instance JSONL file (input to score/verify/report)")
    p.add_argument("--allocations", metavar="PATH", default=None,
                   help="allocation JSONL file (input to verify/report)")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="output path (generate: instances JSONL, "
                        "score: allocations JSONL)")
    p.add_argument("--policies",
                   default="static,greedy,exhaustive,seeded,locality",
                   help="comma-separated policy portfolio for score")
    p.add_argument("--smoke", action="store_true",
                   help="tiny self-checking end-to-end run: JSONL "
                        "round-trips exact, verifier bit-identical to "
                        "decisions, regret >= 0, oracle regret 0 "
                        "(CI health check; run under both gate modes)")

    p = sub.add_parser("obs-report",
                       help="summarise (or diff) a trace written by --trace")
    p.add_argument("trace", help="path to a repro.obs JSONL trace")
    p.add_argument("--diff", metavar="OTHER", default=None,
                   help="second trace: print a quantity-by-quantity diff "
                        "instead of a report")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "obs-report":
        print(_cmd_obs_report(args))
        return 0
    trace_path = getattr(args, "trace", None)
    # One tracer for the whole invocation: `all` merges every experiment
    # into a single trace, exported when the block exits.
    with tracing(path=trace_path) if trace_path else nullcontext():
        if args.experiment == "serve":
            print(_cmd_serve(args))
            return 0
        if args.experiment == "arena":
            _apply_quick(args, "arena", parser.parse_args(["arena"]))
            print(_cmd_arena(args))
            return 0
        if args.experiment == "all":
            for name in _COMMANDS:
                # Forward every shared flag the subcommand understands —
                # generically, so new common() flags never need enumerating
                # here again.
                sub_args = parser.parse_args([name])
                defaults = argparse.Namespace(**vars(sub_args))
                for key, value in vars(args).items():
                    if key != "experiment" and hasattr(sub_args, key):
                        setattr(sub_args, key, value)
                _apply_quick(sub_args, name, defaults)
                print(f"\n===== {name} =====")
                print(_COMMANDS[name](sub_args))
            return 0
        _apply_quick(args, args.experiment, parser.parse_args([args.experiment]))
        print(_COMMANDS[args.experiment](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

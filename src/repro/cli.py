"""Command-line interface: run any of the paper's experiments.

Usage::

    python -m repro <experiment> [options]

Experiments
-----------
``fig34``      Figures 3 & 4: the AppLeS and static partitions side by side.
``fig5``       Figure 5: AppLeS vs Strip vs Blocked execution times.
``fig6``       Figure 6: memory-aware scheduling with the SP-2 pair.
``react``      §2.3: single-site vs pipelined 3D-REACT + pipeline sweep.
``nile``       §2.1: the Site Manager's skim-vs-remote decision sweep.
``nws``        §3.6: forecaster-quality comparison across load families.
``info``       ABL-A2: nominal vs NWS vs oracle information.
``selection``  ABL-A3: subset selection vs use-everything vs best single.
``adaptive``   ABL-A4: one-shot vs adaptive rescheduling (extension).
``multiapp``   MULTI-A5: two applications sharing the metacomputer (extension).
``contention`` CONTEND: many agents deciding together via the scheduling
               service, each then running under the others' load (extension).
``metrics``    METRIC-A6: three user metrics, three schedules (§3.1).
``decomposition``  ABL-A7: strip vs generalised-block planning (extension).
``all``        Everything above, in order.
``serve``      Always-on sharded scheduling daemon under synthetic load
               (``--smoke`` runs the short self-checking preset).
``arena``      Scheduler arena: generate frozen instances, score the
               policy portfolio, verify emitted allocations, report
               regret vs the exhaustive oracle (``--smoke`` runs the
               short self-checking preset).
``reserve``    Request-driven reservations: submit requests, expand +
               book them on the pool timeline, repair incrementally,
               report (``--smoke`` runs the short self-checking preset).
``obs-report`` Summarise (or diff) a JSONL trace written by ``--trace``.

Every experiment accepts ``--trace PATH`` (write a ``repro.obs`` trace of
the run) and ``--quick`` (a reduced preset for smoke tests); both are
forwarded by ``all`` along with every other shared flag.  The
simulation-backed figure sweeps (``fig5``, ``fig6``) also accept
``--replicates N``: N independently-seeded replicate worlds executed in
one ensemble pass (:mod:`repro.sim.execution_ensemble`) and reported as
mean ± confidence interval per size.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import nullcontext
from typing import Any, Callable, Sequence

from repro.experiments import (
    run_adaptive_ablation,
    run_decomposition_ablation,
    run_fig5,
    run_fig5_replicated,
    run_fig6,
    run_fig6_replicated,
    run_fig34,
    run_information_ablation,
    run_metrics_comparison,
    run_multiapp,
    run_nile_skim,
    run_nws_comparison,
    run_react,
    run_selection_ablation,
    run_service_contention,
)
from repro.obs.report import read_trace, render_report, trace_diff
from repro.obs.trace import tracing

__all__ = ["main", "build_parser"]


def _sizes(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.split(",") if x)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"sizes must be comma-separated integers, got {text!r}"
        ) from None


def _cmd_fig34(args: argparse.Namespace) -> str:
    result = run_fig34(n=args.n, seed=args.seed)
    return result.table().render() + "\n\n" + result.ascii_partition("apples")


def _cmd_fig5(args: argparse.Namespace) -> str:
    if args.replicates > 1:
        return run_fig5_replicated(
            sizes=args.sizes, iterations=args.iterations, repeats=args.repeats,
            seed=args.seed, replicates=args.replicates,
        ).table().render()
    result = run_fig5(
        sizes=args.sizes, iterations=args.iterations, repeats=args.repeats,
        seed=args.seed, workers=args.workers,
    )
    lo, hi = result.ratio_range
    return (
        result.table().render()
        + f"\n\nbaseline/AppLeS ratio range: {lo:.2f}x – {hi:.2f}x (paper: 2x – 8x)"
    )


def _cmd_fig6(args: argparse.Namespace) -> str:
    if args.replicates > 1:
        return run_fig6_replicated(
            sizes=args.sizes, iterations=args.iterations, seed=args.seed,
            replicates=args.replicates,
        ).table().render()
    result = run_fig6(sizes=args.sizes, iterations=args.iterations, seed=args.seed,
                      workers=args.workers)
    return result.table().render()


def _cmd_react(args: argparse.Namespace) -> str:
    result = run_react(seed=args.seed)
    return (
        result.timing_table().render()
        + f"\n\nspeedup over best single site: {result.speedup:.2f}x\n\n"
        + result.sweep_table().render()
    )


def _cmd_nile(args: argparse.Namespace) -> str:
    result = run_nile_skim(nevents=args.events, seed=args.seed)
    return result.table().render()


def _cmd_nws(args: argparse.Namespace) -> str:
    result = run_nws_comparison(nsamples=args.samples, seed=args.seed,
                                workers=args.workers)
    lines = [result.table().render(), ""]
    for process in sorted(result.mse):
        lines.append(
            f"best for {process}: {result.best_for(process)} "
            f"(ensemble regret {result.ensemble_regret(process):.2f}x)"
        )
    return "\n".join(lines)


def _cmd_info(args: argparse.Namespace) -> str:
    return run_information_ablation(
        n=args.n, seed=args.seed, workers=args.workers
    ).table().render()


def _cmd_selection(args: argparse.Namespace) -> str:
    return run_selection_ablation(
        n=args.n, seed=args.seed, workers=args.workers
    ).table().render()


def _cmd_adaptive(args: argparse.Namespace) -> str:
    result = run_adaptive_ablation(n=args.n, workers=args.workers)
    return (
        result.table().render()
        + f"\n\nadaptive improvement: {result.improvement:.2f}x"
    )


def _cmd_multiapp(args: argparse.Namespace) -> str:
    result = run_multiapp(n=args.n, seed=args.seed, workers=args.workers)
    return (
        result.table().render()
        + f"\n\naware speedup over oblivious: {result.improvement:.2f}x"
    )


def _cmd_contention(args: argparse.Namespace) -> str:
    result = run_service_contention(
        napps=args.apps, n=args.n, seed=args.seed, workers=args.workers,
    )
    return (
        result.table().render()
        + f"\n\nmean actual/predicted: {result.mean_degradation:.2f}x "
        f"(service answers identical to solo agents: "
        f"{result.service_matches_solo})"
    )


def _cmd_metrics(args: argparse.Namespace) -> str:
    return run_metrics_comparison(n=args.n, seed=args.seed).table().render()


def _cmd_decomposition(args: argparse.Namespace) -> str:
    return run_decomposition_ablation(n=args.n, seed=args.seed).table().render()


# Pools the daemon can serve, by shard name.  All take a ``seed`` kwarg.
def _pools() -> dict[str, Callable[..., Any]]:
    from repro.sim import casa_testbed, nile_testbed, sdsc_pcl_testbed

    return {"sdsc": sdsc_pcl_testbed, "casa": casa_testbed, "nile": nile_testbed}


def _cmd_serve(args: argparse.Namespace) -> str:
    """Drive the always-on daemon with seeded open-loop traffic, then report.

    With ``--smoke``: a reduced preset that additionally re-derives every
    answered request's decision through a fresh one-shot
    ``SchedulingService`` and fails loudly on any mismatch — the CI
    health check for the daemon path (run it under both gate modes).
    """
    from repro.nws import NetworkWeatherService
    from repro.service import SchedulingDaemon, SchedulingService, ShardSpec
    from repro.service.daemon import ANSWERED, FAILED
    from repro.service.loadgen import (
        SyntheticPopulation,
        open_loop_events,
        run_open_loop,
    )

    pools = _pools()
    names = [s for s in args.shards.split(",") if s]
    unknown = [s for s in names if s not in pools]
    if unknown:
        raise SystemExit(
            f"unknown pool(s) {unknown}; available: {sorted(pools)}"
        )
    warmup_s = 600.0
    n_requests = 24 if args.smoke else args.requests
    speed = 50.0 if args.smoke else args.speed
    specs = [
        ShardSpec(name, pools[name], seed=args.seed, warmup_s=warmup_s)
        for name in names
    ]
    population = SyntheticPopulation(
        names, seed=args.seed + 17, base_at=warmup_s,
        instant_every=0 if args.smoke else 128,
    )
    events = open_loop_events(
        population, rate_hz=args.rate, n_requests=n_requests
    )
    daemon = SchedulingDaemon(
        specs, queue_capacity=args.queue_capacity,
        workers=max(1, args.workers),
    )
    daemon.start()
    t0 = time.perf_counter()
    tickets = run_open_loop(daemon, events, speed=speed)
    daemon.drain(timeout=600.0)
    elapsed = time.perf_counter() - t0
    daemon.shutdown()

    replies = [t.result(0.0) for t in tickets]
    answered = [r for r in replies if r.status == ANSWERED]
    failed = [r for r in replies if r.status == FAILED]
    latencies = sorted(r.latency_s for r in answered)

    def pct(q: float) -> float:
        if not latencies:
            return float("nan")
        return latencies[min(len(latencies) - 1,
                             int(round(q * (len(latencies) - 1))))] * 1e3

    lines = [
        f"scheduling daemon: {len(names)} shard(s), "
        f"{n_requests} requests @ {args.rate:.0f} req/s offered "
        f"(speed {speed:g}x), workers={max(1, args.workers)}",
        f"answered {len(answered)}  shed {sum(r.status == 'shed' for r in replies)}"
        f"  rejected {sum(r.status == 'rejected' for r in replies)}"
        f"  failed {len(failed)}"
        f"  in {elapsed:.2f}s ({len(answered) / elapsed:.1f} dec/s)",
        f"latency p50 {pct(0.50):.1f} ms  p99 {pct(0.99):.1f} ms",
        "",
        f"{'shard':>8}{'answered':>10}{'shed':>6}{'batches':>9}{'max batch':>11}",
    ]
    for name, row in sorted(daemon.stats().items()):
        lines.append(
            f"{name:>8}{row['answered']:>10}{row['shed']:>6}"
            f"{row['batches']:>9}{row['max_batch']:>11}"
        )

    if failed:
        raise SystemExit("daemon reported failed batches:\n" + "\n".join(lines))
    if args.smoke:
        if not answered:
            raise SystemExit("smoke answered nothing:\n" + "\n".join(lines))
        # Re-derive every answered decision through a fresh one-shot
        # service on a private world: the daemon must be bit-identical.
        by_shard: dict[str, list] = {}
        for ticket in tickets:
            reply = ticket.result(0.0)
            if reply.status == ANSWERED:
                by_shard.setdefault(ticket.shard, []).append((ticket.request, reply))
        checked = 0
        for name, pairs in sorted(by_shard.items()):
            testbed = pools[name](seed=args.seed)
            nws = NetworkWeatherService.for_testbed(testbed, seed=args.seed + 1)
            nws.warmup(warmup_s)
            reference = SchedulingService(testbed, nws).decide(
                [request for request, _ in pairs]
            )
            for (request, reply), ref in zip(pairs, reference):
                same = (
                    reply.answer.best_objective == ref.best_objective
                    and reply.answer.predicted_time == ref.predicted_time
                    and reply.answer.machines == ref.machines
                )
                if not same:
                    raise SystemExit(
                        f"daemon answer diverged from SchedulingService on "
                        f"shard {name!r}: {request!r}"
                    )
                checked += 1
        lines.append("")
        lines.append(
            f"smoke: {checked} answers re-derived through a one-shot "
            "service — bit-identical"
        )
    return "\n".join(lines)


def _cmd_arena(args: argparse.Namespace) -> str:
    """Drive the scheduler arena: generate / score / verify / report.

    The four actions share one contract: instances and allocations live in
    plain JSONL files, and everything downstream of ``score`` is driven by
    the standalone verifier alone — ``verify`` and ``report`` work on
    files produced by processes this one has never imported.
    """
    from repro import arena

    if args.smoke:
        return _arena_smoke(args)
    if args.action is None:
        raise SystemExit(
            "arena needs an action (generate / score / verify / report) "
            "or --smoke"
        )
    classes = tuple(c for c in args.classes.split(",") if c)
    policies = tuple(p for p in args.policies.split(",") if p)

    if args.action == "generate":
        instances = []
        for klass in classes:
            kwargs = {} if args.sizes is None else {"sizes": args.sizes}
            instances.extend(
                arena.generate_instances(
                    klass, args.per_class, seed=args.seed,
                    iterations=args.iterations, **kwargs,
                )
            )
        out = args.out or "arena_instances.jsonl"
        arena.save_instances(out, instances)
        return (
            f"wrote {len(instances)} instances "
            f"({', '.join(classes)}) to {out}"
        )

    if args.instances is None:
        raise SystemExit(f"arena {args.action} requires --instances PATH")
    instances = arena.load_instances(args.instances)

    if args.action == "score":
        allocations = arena.run_policies(instances, policies)
        out = args.out or "arena_allocations.jsonl"
        arena.save_allocations(out, allocations)
        result = arena.score_allocations(instances, allocations)
        return (
            f"wrote {len(allocations)} allocations to {out}\n\n"
            + result.table()
        )

    if args.allocations is None:
        raise SystemExit(f"arena {args.action} requires --allocations PATH")
    allocations = arena.load_allocations(args.allocations)

    if args.action == "verify":
        lines = []
        rejected = 0
        for alloc in allocations:
            inst = next(
                (i for i in instances if i.instance_id == alloc.instance_id),
                None,
            )
            if inst is None:
                raise SystemExit(
                    f"allocation references unknown instance "
                    f"{alloc.instance_id!r}"
                )
            report = arena.verify_allocation(inst, alloc)
            rejected += not report.feasible
            verdict = (
                f"ok  objective={report.objective:.6f}"
                if report.feasible
                else f"REJECTED ({report.reason})"
            )
            lines.append(f"{alloc.instance_id}  {alloc.policy:<12} {verdict}")
        lines.append("")
        lines.append(
            f"{len(allocations)} allocations verified, {rejected} rejected"
        )
        return "\n".join(lines)

    # report: aggregate regret purely from the two files.
    return arena.score_allocations(instances, allocations).table()


def _arena_smoke(args: argparse.Namespace) -> str:
    """Tiny end-to-end self-check (run it under both gate modes in CI).

    Generates two 8-host instances, runs the full policy portfolio,
    round-trips everything through JSONL, and asserts the arena's core
    invariants: verifier/decision bit-identity, regret >= 0 everywhere,
    and exactly 0 for the exhaustive oracle.
    """
    import tempfile
    from pathlib import Path

    from repro import arena

    instances = arena.generate_instances(
        "sdsc8", 2, seed=args.seed, sizes=(400,), iterations=20
    )
    allocations = arena.run_policies(instances)

    with tempfile.TemporaryDirectory() as tmp:
        inst_path = Path(tmp) / "instances.jsonl"
        alloc_path = Path(tmp) / "allocations.jsonl"
        arena.save_instances(inst_path, instances)
        arena.save_allocations(alloc_path, allocations)
        if arena.load_instances(inst_path) != instances:
            raise SystemExit("smoke: instance JSONL round-trip diverged")
        if arena.load_allocations(alloc_path) != allocations:
            raise SystemExit("smoke: allocation JSONL round-trip diverged")

    by_id = {inst.instance_id: inst for inst in instances}
    checked = 0
    for alloc in allocations:
        report = arena.verify_allocation(by_id[alloc.instance_id], alloc)
        if alloc.policy != "static":
            if not report.feasible:
                raise SystemExit(
                    f"smoke: {alloc.policy} emitted an infeasible allocation "
                    f"({report.reason})"
                )
            if report.objective != alloc.claimed_objective:
                raise SystemExit(
                    f"smoke: verifier objective {report.objective!r} != "
                    f"decision objective {alloc.claimed_objective!r} "
                    f"for {alloc.policy} on {alloc.instance_id}"
                )
            checked += 1

    result = arena.score_allocations(instances, allocations)
    for score in result.scores:
        if any(r < 0.0 for r in score.regrets):
            raise SystemExit(f"smoke: negative regret for {score.policy}")
        if score.policy == "exhaustive" and score.regrets and (
            score.mean_regret != 0.0
        ):
            raise SystemExit("smoke: exhaustive oracle has nonzero regret")
    return (
        result.table()
        + f"\n\nsmoke: {checked} decision objectives re-derived by the "
        "standalone verifier — bit-identical; JSONL round-trips exact"
    )


def _reserve_world(pool: str, seed: int) -> dict:
    """The arena-style world spec the reservation planner rebuilds from."""
    worlds = {
        "sdsc": {"generator": "sdsc", "n_hosts": 8, "n_segments": None},
        "synth": {"generator": "synthetic", "n_hosts": 14, "n_segments": 3},
    }
    spec = worlds.get(pool)
    if spec is None:
        raise SystemExit(f"unknown pool {pool!r}; available: {sorted(worlds)}")
    return {**spec, "seed": seed, "nws_seed": seed + 1, "warmup_s": 600.0}


def _booking_table(ledger) -> str:
    header = f"{'booking':<26}{'prio':>5}{'start':>10}{'end':>10}  machines"
    lines = [header]
    for b in ledger.bookings:
        lines.append(
            f"{b.booking_id:<26}{b.priority:>5}{b.start:>10.1f}"
            f"{b.end:>10.1f}  {','.join(b.machines)}"
        )
    return "\n".join(lines)


def _cmd_reserve(args: argparse.Namespace) -> str:
    """Drive the reservation layer: submit / plan / repair / report.

    Like the arena, the four actions share one file contract — requests
    and bookings are plain JSONL — so ``repair`` and ``report`` work on
    ledgers produced by processes this one has never imported.
    """
    from repro import reserve

    if args.smoke:
        return _reserve_smoke(args)
    if args.action is None:
        raise SystemExit(
            "reserve needs an action (submit / plan / repair / report) "
            "or --smoke"
        )

    if args.action == "submit":
        requests = reserve.seeded_requests(args.count, seed=args.seed)
        out = args.out or "reserve_requests.jsonl"
        reserve.save_requests(out, requests)
        lines = [f"wrote {len(requests)} requests to {out}", ""]
        for r in requests:
            cap = "*" if r.max_machines is None else r.max_machines
            lines.append(
                f"{r.request_id}  prio={r.priority} n={r.problem.n} "
                f"x{r.repeat_count} machines {r.min_machines}..{cap} "
                f"window [{r.earliest_start:g}, {r.deadline:g})"
            )
        return "\n".join(lines)

    if args.requests is None:
        raise SystemExit(f"reserve {args.action} requires --requests PATH")
    requests = reserve.load_requests(args.requests)
    world = _reserve_world(args.pool, args.seed)

    if args.action == "plan":
        planner = reserve.ReservationPlanner(world=world, label=args.pool)
        outcome = planner.plan(requests)
        out = args.out or "reserve_bookings.jsonl"
        reserve.save_bookings(out, outcome.ledger)
        lines = [_booking_table(outcome.ledger), ""]
        for request_id, occ in outcome.rejected:
            lines.append(f"rejected {request_id}#{occ}: no feasible candidate")
        lines.append(
            f"booked {len(outcome.booked)}  rejected {len(outcome.rejected)}"
            f"  decisions {outcome.decisions}  expansions {outcome.expansions}"
        )
        lines.append(f"wrote {len(outcome.ledger)} bookings to {out}")
        return "\n".join(lines)

    if args.bookings is None:
        raise SystemExit(f"reserve {args.action} requires --bookings PATH")
    ledger = reserve.load_bookings(args.bookings)

    if args.action == "repair":
        planner = reserve.ReservationPlanner(world=world, label=args.pool)
        new = reserve.load_requests(args.new) if args.new else []
        outcome = planner.repair(
            ledger,
            new_requests=new,
            invalidate=tuple(args.invalidate),
            requests=requests,
        )
        out = args.out or "reserve_bookings.jsonl"
        reserve.save_bookings(out, ledger)
        lines = [_booking_table(ledger), ""]
        for a in outcome.actions:
            if a.booking_id:
                lines.append(
                    f"repaired {a.booking_id} -> {a.replacement_id} "
                    f"via {a.strategy}"
                )
            else:
                lines.append(
                    f"placed {a.replacement_id} for new request "
                    f"{a.request_id}#{a.occurrence}"
                )
        for request_id, occ in outcome.rejected:
            lines.append(f"rejected {request_id}#{occ}: no feasible candidate")
        lines.append(
            f"repaired {len(outcome.repaired)}  placed {len(outcome.booked)}"
            f"  untouched {len(outcome.untouched)}"
            f"  decisions {outcome.stats.decisions}"
        )
        lines.append(f"wrote {len(ledger)} bookings to {out}")
        return "\n".join(lines)

    # report: verify the ledger purely from the two files.
    problems = reserve.verify_ledger(ledger, requests)
    lines = [_booking_table(ledger), ""]
    if problems:
        lines.extend(f"PROBLEM: {p}" for p in problems)
        lines.append(f"{len(ledger)} bookings, {len(problems)} problem(s)")
    else:
        lines.append(f"{len(ledger)} bookings verified: conflict-free, "
                     "every one inside its request's windows")
    return "\n".join(lines)


def _reserve_smoke(args: argparse.Namespace) -> str:
    """Tiny end-to-end self-check (run it under both gate modes in CI).

    Plans the seeded workload on the 8-host SDSC world, round-trips both
    JSONL formats, verifies the ledger, then injects an urgent request and
    checks the repair contract: the repaired ledger verifies clean, every
    untouched booking is *the same object* (bit-identity for free), and
    repair spends strictly fewer decisions than a from-scratch replan.
    """
    import tempfile
    from pathlib import Path

    from repro import reserve

    world = _reserve_world("sdsc", args.seed)
    requests = reserve.seeded_requests(6, seed=2026)

    planner = reserve.ReservationPlanner(world=world, label="sdsc")
    outcome = planner.plan(requests)
    if not outcome.booked:
        raise SystemExit("smoke: plan booked nothing")
    problems = reserve.verify_ledger(outcome.ledger, requests)
    if problems:
        raise SystemExit("smoke: planned ledger rejected:\n"
                         + "\n".join(problems))

    with tempfile.TemporaryDirectory() as tmp:
        req_path = Path(tmp) / "requests.jsonl"
        book_path = Path(tmp) / "bookings.jsonl"
        reserve.save_requests(req_path, requests)
        if reserve.load_requests(req_path) != requests:
            raise SystemExit("smoke: request JSONL round-trip diverged")
        reserve.save_bookings(book_path, outcome.ledger)
        if reserve.load_bookings(book_path).bookings != outcome.ledger.bookings:
            raise SystemExit("smoke: booking JSONL round-trip diverged")

    # An urgent (stronger-priority) request spanning the booked horizon.
    first = min(b.start for b in outcome.ledger.bookings)
    last = max(b.end for b in outcome.ledger.bookings)
    urgent = reserve.ReservationRequest(
        request_id="urgent-000",
        problem=requests[0].problem,
        earliest_start=first,
        deadline=last + 1800.0,
        min_machines=2,
        priority=1,
    )
    before = {b.booking_id: b for b in outcome.ledger.bookings}
    repair = planner.repair(outcome.ledger, new_requests=[urgent])
    if not repair.booked:
        raise SystemExit("smoke: urgent request not placed by repair")
    problems = reserve.verify_ledger(outcome.ledger, requests + [urgent])
    if problems:
        raise SystemExit("smoke: repaired ledger rejected:\n"
                         + "\n".join(problems))
    for bid in repair.untouched:
        if outcome.ledger.get(bid) is not before[bid]:
            raise SystemExit(
                f"smoke: repair rebuilt untouched booking {bid!r}"
            )

    # Differential: a from-scratch replan of all 7 requests must accept
    # the same occurrence set while spending far more decisions.
    replan = reserve.ReservationPlanner(world=world, label="sdsc").plan(
        requests + [urgent]
    )
    ours = {(b.request_id, b.occurrence) for b in outcome.ledger.bookings}
    theirs = {(b.request_id, b.occurrence) for b in replan.ledger.bookings}
    if ours != theirs:
        raise SystemExit(
            f"smoke: repair booked {sorted(ours)} but a from-scratch "
            f"replan books {sorted(theirs)}"
        )
    if repair.stats.decisions >= replan.decisions:
        raise SystemExit(
            f"smoke: repair spent {repair.stats.decisions} decisions, "
            f"replan only {replan.decisions} — repair must be cheaper"
        )
    return (
        _booking_table(outcome.ledger)
        + f"\n\nsmoke: {len(outcome.booked)} bookings planned, urgent "
        f"request repaired in with {len(repair.untouched)} untouched "
        f"bookings object-identical; repair spent "
        f"{repair.stats.decisions} decisions vs {replan.decisions} for a "
        "from-scratch replan; JSONL round-trips exact"
    )


def _cmd_obs_report(args: argparse.Namespace) -> str:
    data = read_trace(args.trace)
    if args.diff is not None:
        return trace_diff(data, read_trace(args.diff),
                          label_a=str(args.trace), label_b=str(args.diff)).render()
    return render_report(data)


# Reduced presets applied by --quick.  Only flags still at their parser
# default are overridden, so explicit flags always win over the preset.
_QUICK: dict[str, dict[str, Any]] = {
    "fig34": {"n": 1000},
    "fig5": {"sizes": (1000, 1400), "iterations": 10, "repeats": 2},
    "fig6": {"sizes": (1000, 2000), "iterations": 10},
    "nile": {"events": 50_000},
    "nws": {"samples": 150},
    "info": {"n": 800},
    "selection": {"n": 800},
    "adaptive": {"n": 800},
    "multiapp": {"n": 800},
    "contention": {"n": 800, "apps": 3},
    "metrics": {"n": 800},
    "decomposition": {"n": 800},
    "arena": {"per_class": 3, "sizes": (400, 700), "iterations": 20},
}


def _apply_quick(args: argparse.Namespace, name: str,
                 defaults: argparse.Namespace) -> None:
    """Overwrite default-valued flags with the quick preset for ``name``."""
    if not getattr(args, "quick", False):
        return
    for key, value in _QUICK.get(name, {}).items():
        if getattr(args, key, None) == getattr(defaults, key, None):
            setattr(args, key, value)


_COMMANDS: dict[str, Callable[[argparse.Namespace], str]] = {
    "fig34": _cmd_fig34,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "react": _cmd_react,
    "nile": _cmd_nile,
    "nws": _cmd_nws,
    "info": _cmd_info,
    "selection": _cmd_selection,
    "adaptive": _cmd_adaptive,
    "multiapp": _cmd_multiapp,
    "contention": _cmd_contention,
    "metrics": _cmd_metrics,
    "decomposition": _cmd_decomposition,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the experiments of Berman & Wolski, HPDC 1996.",
    )
    sub = parser.add_subparsers(dest="experiment", required=True)

    def common(p: argparse.ArgumentParser, n_default: int | None = None) -> None:
        p.add_argument("--seed", type=int, default=1996,
                       help="testbed load seed (default 1996)")
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes for trial parallelism "
                            "(1 = serial, -1 = all CPUs; results are "
                            "identical for any value)")
        p.add_argument("--trace", metavar="PATH", default=None,
                       help="write a repro.obs JSONL trace of the run to "
                            "PATH (results are bit-identical with tracing "
                            "on or off)")
        p.add_argument("--quick", action="store_true",
                       help="reduced preset for smoke tests (explicit "
                            "flags still win)")
        if n_default is not None:
            p.add_argument("--n", type=int, default=n_default,
                           help=f"problem edge length (default {n_default})")

    p = sub.add_parser("fig34", help="Figures 3 & 4: the two partitions")
    common(p, n_default=2000)

    def replicates_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--replicates", type=int, default=1,
                       help="independently-seeded replicate worlds executed "
                            "in one ensemble pass; >1 reports mean ± CI "
                            "per size (default 1: the point-estimate run)")

    p = sub.add_parser("fig5", help="Figure 5: execution-time comparison")
    common(p)
    replicates_flag(p)
    p.add_argument("--sizes", type=_sizes,
                   default=(1000, 1200, 1400, 1600, 1800, 2000),
                   help="comma-separated problem sizes")
    p.add_argument("--iterations", type=int, default=60)
    p.add_argument("--repeats", type=int, default=3)

    p = sub.add_parser("fig6", help="Figure 6: memory-aware scheduling")
    common(p)
    replicates_flag(p)
    p.add_argument("--sizes", type=_sizes,
                   default=(1000, 2000, 3000, 3500, 3700, 3900, 4200, 4600))
    p.add_argument("--iterations", type=int, default=30)

    p = sub.add_parser("react", help="3D-REACT timings and pipeline sweep")
    common(p)

    p = sub.add_parser("nile", help="NILE skim-vs-remote decisions")
    common(p)
    p.add_argument("--events", type=int, default=500_000)

    p = sub.add_parser("nws", help="forecaster-quality comparison")
    common(p)
    p.add_argument("--samples", type=int, default=600)

    for name, n_default, help_text in (
        ("info", 1600, "information ablation (nominal/NWS/oracle)"),
        ("selection", 1600, "resource-selection ablation"),
        ("adaptive", 1200, "adaptive rescheduling vs one-shot"),
        ("multiapp", 1600, "two applications sharing the metacomputer"),
        ("metrics", 1600, "three user metrics, three schedules"),
        ("decomposition", 1600, "strip vs generalised-block planning"),
    ):
        p = sub.add_parser(name, help=help_text)
        common(p, n_default=n_default)

    p = sub.add_parser(
        "contention",
        help="many agents deciding together via the scheduling service",
    )
    common(p, n_default=1200)
    p.add_argument("--apps", type=int, default=5,
                   help="number of applications in the batch (default 5)")

    p = sub.add_parser("all", help="run every experiment in order")
    common(p)
    replicates_flag(p)  # forwarded to the subcommands that understand it

    p = sub.add_parser(
        "serve",
        help="always-on sharded scheduling daemon under synthetic load",
    )
    common(p)
    p.add_argument("--shards", default="sdsc,casa",
                   help="comma-separated pool names to serve "
                        "(sdsc, casa, nile; default sdsc,casa)")
    p.add_argument("--requests", type=int, default=200,
                   help="open-loop requests to offer (default 200)")
    p.add_argument("--rate", type=float, default=50.0,
                   help="offered arrival rate in requests/sec (default 50)")
    p.add_argument("--speed", type=float, default=1.0,
                   help="replay compression: 10 plays the arrival plan "
                        "10x faster (default 1)")
    p.add_argument("--queue-capacity", type=int, default=256,
                   dest="queue_capacity",
                   help="per-shard admission queue bound (default 256)")
    p.add_argument("--smoke", action="store_true",
                   help="reduced self-checking run: 24 requests at 50x "
                        "speed, every answer re-derived through a "
                        "one-shot SchedulingService (CI health check)")

    p = sub.add_parser(
        "arena",
        help="scheduler arena: instance dataset, verifier, regret report",
    )
    common(p)
    p.add_argument("action", nargs="?", default=None,
                   choices=("generate", "score", "verify", "report"),
                   help="generate instances / run + score the portfolio / "
                        "verify saved allocations / report regret from "
                        "saved files")
    p.add_argument("--classes", default="sdsc8,synth14",
                   help="comma-separated instance classes (default "
                        "sdsc8,synth14)")
    p.add_argument("--per-class", type=int, default=6, dest="per_class",
                   help="instances generated per class (default 6)")
    p.add_argument("--sizes", type=_sizes, default=None,
                   help="comma-separated problem edge lengths cycled "
                        "across each class's instances")
    p.add_argument("--iterations", type=int, default=40,
                   help="Jacobi iterations per instance (default 40)")
    p.add_argument("--instances", metavar="PATH", default=None,
                   help="instance JSONL file (input to score/verify/report)")
    p.add_argument("--allocations", metavar="PATH", default=None,
                   help="allocation JSONL file (input to verify/report)")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="output path (generate: instances JSONL, "
                        "score: allocations JSONL)")
    p.add_argument("--policies",
                   default="static,greedy,exhaustive,seeded,locality",
                   help="comma-separated policy portfolio for score")
    p.add_argument("--smoke", action="store_true",
                   help="tiny self-checking end-to-end run: JSONL "
                        "round-trips exact, verifier bit-identical to "
                        "decisions, regret >= 0, oracle regret 0 "
                        "(CI health check; run under both gate modes)")

    p = sub.add_parser(
        "reserve",
        help="request-driven reservations: expand, book, repair",
    )
    common(p)
    p.add_argument("action", nargs="?", default=None,
                   choices=("submit", "plan", "repair", "report"),
                   help="write the seeded request workload / expand + book "
                        "requests on the pool timeline / patch a saved "
                        "ledger incrementally / verify saved bookings")
    p.add_argument("--pool", default="sdsc",
                   help="world to plan on (sdsc, synth; default sdsc)")
    p.add_argument("--count", type=int, default=6,
                   help="requests generated by submit (default 6)")
    p.add_argument("--requests", metavar="PATH", default=None,
                   help="request JSONL file (input to plan/repair/report)")
    p.add_argument("--bookings", metavar="PATH", default=None,
                   help="booking JSONL file (input to repair/report)")
    p.add_argument("--new", metavar="PATH", default=None,
                   help="JSONL of newly-arrived requests folded in by repair")
    p.add_argument("--invalidate", metavar="BOOKING_ID", action="append",
                   default=[],
                   help="booking id whose forecasts went stale; repaired "
                        "rather than replanned (repeatable)")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="output path (submit: requests JSONL, plan/repair: "
                        "bookings JSONL)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny self-checking end-to-end run: plan the seeded "
                        "workload, repair in an urgent request, untouched "
                        "bookings object-identical, repair cheaper than "
                        "replan (CI health check; run under both gate modes)")

    p = sub.add_parser("obs-report",
                       help="summarise (or diff) a trace written by --trace")
    p.add_argument("trace", help="path to a repro.obs JSONL trace")
    p.add_argument("--diff", metavar="OTHER", default=None,
                   help="second trace: print a quantity-by-quantity diff "
                        "instead of a report")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "obs-report":
        print(_cmd_obs_report(args))
        return 0
    trace_path = getattr(args, "trace", None)
    # One tracer for the whole invocation: `all` merges every experiment
    # into a single trace, exported when the block exits.
    with tracing(path=trace_path) if trace_path else nullcontext():
        if args.experiment == "serve":
            print(_cmd_serve(args))
            return 0
        if args.experiment == "arena":
            _apply_quick(args, "arena", parser.parse_args(["arena"]))
            print(_cmd_arena(args))
            return 0
        if args.experiment == "reserve":
            print(_cmd_reserve(args))
            return 0
        if args.experiment == "all":
            for name in _COMMANDS:
                # Forward every shared flag the subcommand understands —
                # generically, so new common() flags never need enumerating
                # here again.
                sub_args = parser.parse_args([name])
                defaults = argparse.Namespace(**vars(sub_args))
                for key, value in vars(args).items():
                    if key != "experiment" and hasattr(sub_args, key):
                        setattr(sub_args, key, value)
                _apply_quick(sub_args, name, defaults)
                print(f"\n===== {name} =====")
                print(_COMMANDS[name](sub_args))
            return 0
        _apply_quick(args, args.experiment, parser.parse_args([args.experiment]))
        print(_COMMANDS[args.experiment](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Arena baselines: every policy emits allocations, the verifier scores them.

A policy here is anything that turns an :class:`ArenaInstance` into an
:class:`ArenaAllocation` — machines in strip order plus the grid points
each gets.  The arena's contract is one-directional: policies may import
whatever scheduler machinery they like, but the verifier never imports
them back; all comparison happens on the emitted allocations.

Portfolio:

``static``
    :class:`~repro.jacobi.apples.StaticStripPlanner` over the whole pool —
    the compile-time Figure 4 baseline.  Its ``claimed_objective`` is the
    nominal prediction, which the verifier routinely contradicts: that gap
    *is* the paper's point.
``greedy``
    The AppLeS agent restricted to the greedy candidate ladder
    (``regime="greedy"``) — what large pools used to silently get.
``exhaustive``
    The AppLeS agent over every non-empty subset — the regret oracle.
    Refuses pools above :data:`EXHAUSTIVE_CEILING` machines.
``seeded``
    :class:`~repro.core.selector.SeededSelector` — the greedy ladder plus
    conservative-speed-ranked prefixes and previous-winner neighbourhoods,
    with breadth adapted from each decision's :class:`PruningStats`.
``locality``
    :class:`~repro.core.selector.LocalitySelector` — the ladder plus
    site-local prefixes and cross-site unions.

``seeded`` and ``locality`` runners are *stateful*: one selector instance
persists across a class's instance sequence and is fed each decision's
winner and pruning statistics, so candidate generation on instance *k*
benefits from instances ``0..k-1``.
"""

from __future__ import annotations

import time

from repro.arena.instances import ArenaAllocation, ArenaInstance, build_world
from repro.core.infopool import InformationPool
from repro.core.resources import ResourcePool
from repro.core.selector import LocalitySelector, ResourceSelector, SeededSelector
from repro.core.userspec import UserSpecification
from repro.jacobi.apples import StaticStripPlanner, make_jacobi_agent
from repro.jacobi.grid import jacobi_hat

__all__ = [
    "POLICY_NAMES",
    "EXHAUSTIVE_CEILING",
    "PolicyRunner",
    "make_policy",
    "run_policies",
    "run_policies_timed",
]

POLICY_NAMES = ("static", "greedy", "exhaustive", "seeded", "locality")

#: Hard ceiling for the exhaustive oracle: 2^16 - 1 candidate sets is the
#: most the batched evaluator chews through in reasonable bench time.
EXHAUSTIVE_CEILING = 16


class PolicyRunner:
    """Base: rebuild the instance's world, schedule, emit the allocation."""

    name: str = "abstract"

    def run(self, instance: ArenaInstance) -> ArenaAllocation | None:
        raise NotImplementedError


class _StaticPolicy(PolicyRunner):
    name = "static"

    def run(self, instance: ArenaInstance) -> ArenaAllocation | None:
        testbed, nws = build_world(instance.world)
        problem = instance.jacobi_problem()
        pool = ResourcePool(testbed.topology, nws)
        info = InformationPool(
            pool=pool, hat=jacobi_hat(problem), userspec=UserSpecification()
        )
        schedule = StaticStripPlanner(problem).plan(pool.machine_names(), info)
        if schedule is None:
            return None
        return ArenaAllocation(
            instance_id=instance.instance_id,
            policy=self.name,
            machines=tuple(a.machine for a in schedule.allocations),
            points=tuple(float(a.work_units) for a in schedule.allocations),
            claimed_objective=schedule.predicted_time,
        )


class _AgentPolicy(PolicyRunner):
    """An AppLeS agent with a per-run selector."""

    def __init__(self, name: str) -> None:
        self.name = name

    def _selector(self, instance: ArenaInstance) -> ResourceSelector:
        raise NotImplementedError

    def _after_decision(self, selector, decision) -> None:
        """Hook for stateful selectors (default: stateless)."""

    def run(self, instance: ArenaInstance) -> ArenaAllocation | None:
        testbed, nws = build_world(instance.world)
        problem = instance.jacobi_problem()
        selector = self._selector(instance)
        agent = make_jacobi_agent(
            testbed,
            problem,
            nws,
            selector=selector,
            account_memory=bool(instance.params["account_memory"]),
        )
        decision = agent.schedule()
        self._after_decision(selector, decision)
        schedule = decision.best
        return ArenaAllocation(
            instance_id=instance.instance_id,
            policy=self.name,
            machines=tuple(a.machine for a in schedule.allocations),
            points=tuple(float(a.work_units) for a in schedule.allocations),
            claimed_objective=decision.best_objective,
        )


class _GreedyPolicy(_AgentPolicy):
    def __init__(self) -> None:
        super().__init__("greedy")

    def _selector(self, instance: ArenaInstance) -> ResourceSelector:
        return ResourceSelector(regime="greedy")


class _ExhaustivePolicy(_AgentPolicy):
    def __init__(self) -> None:
        super().__init__("exhaustive")

    def _selector(self, instance: ArenaInstance) -> ResourceSelector:
        n = len(instance.machines)
        if n > EXHAUSTIVE_CEILING:
            raise ValueError(
                f"exhaustive oracle refuses {n} machines "
                f"(ceiling {EXHAUSTIVE_CEILING}): 2^{n} - 1 candidate sets"
            )
        return ResourceSelector(
            exhaustive_limit=max(12, n),
            max_sets=2**n - 1,
            regime="exhaustive",
        )


class _AdaptiveAgentPolicy(_AgentPolicy):
    """Seeded/locality: one persistent selector per instance class."""

    selector_cls: type

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._selectors: dict[str, ResourceSelector] = {}

    def _selector(self, instance: ArenaInstance) -> ResourceSelector:
        selector = self._selectors.get(instance.instance_class)
        if selector is None:
            selector = self.selector_cls()
            self._selectors[instance.instance_class] = selector
        return selector

    def _after_decision(self, selector, decision) -> None:
        selector.observe(decision.best.resource_set, decision.pruning)


class _SeededPolicy(_AdaptiveAgentPolicy):
    selector_cls = SeededSelector

    def __init__(self) -> None:
        super().__init__("seeded")


class _LocalityPolicy(_AdaptiveAgentPolicy):
    selector_cls = LocalitySelector

    def __init__(self) -> None:
        super().__init__("locality")


_FACTORIES = {
    "static": _StaticPolicy,
    "greedy": _GreedyPolicy,
    "exhaustive": _ExhaustivePolicy,
    "seeded": _SeededPolicy,
    "locality": _LocalityPolicy,
}


def make_policy(name: str) -> PolicyRunner:
    """A fresh (stateful where applicable) runner for one policy name."""
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(f"unknown policy {name!r} (have: {sorted(_FACTORIES)})")
    return factory()


def run_policies(
    instances: list[ArenaInstance], policies: tuple[str, ...] = POLICY_NAMES
) -> list[ArenaAllocation]:
    """Run each policy across ``instances`` (in order) and collect answers.

    Instances are grouped per policy in sequence order so stateful
    selectors see a class's instances as a stream, the way a long-running
    scheduling service would.
    """
    allocations, _ = run_policies_timed(instances, policies)
    return allocations


def run_policies_timed(
    instances: list[ArenaInstance], policies: tuple[str, ...] = POLICY_NAMES
) -> tuple[list[ArenaAllocation], dict[tuple[str, str], float]]:
    """:func:`run_policies` plus wall-clock seconds per (class, policy).

    Timing wraps each ``runner.run`` call — world rebuild, candidate
    enumeration, and the solo ``schedule()`` the agent policies make (the
    vectorised one-shot sweep when the configuration supports it) — and
    accumulates per ``(instance_class, policy)``, so the regret bench can
    report what each policy's decisions actually cost.
    """
    allocations: list[ArenaAllocation] = []
    seconds: dict[tuple[str, str], float] = {}
    for name in policies:
        runner = make_policy(name)
        for instance in instances:
            if name == "exhaustive" and len(instance.machines) > EXHAUSTIVE_CEILING:
                continue
            t0 = time.perf_counter()
            answer = runner.run(instance)
            elapsed = time.perf_counter() - t0
            key = (instance.instance_class, name)
            seconds[key] = seconds.get(key, 0.0) + elapsed
            if answer is not None:
                allocations.append(answer)
    return allocations, seconds

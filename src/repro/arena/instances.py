"""Arena instances: frozen scheduling problems, serialised like traces.

An :class:`ArenaInstance` is everything a scheduler was looking at when it
made one decision — the machine pool with its static capability, the NWS
forecast state at the decision instant (availability, forecast error), the
full pairwise latency/bandwidth matrices, the application request, and the
planning parameters — frozen into plain JSON.  Two consumers read it:

- **policies** rebuild the live world from the ``world`` spec (testbeds
  and the NWS are reproducible from their seeds alone) and schedule
  however they like;
- the **standalone verifier** (:mod:`repro.arena.verifier`) reads *only*
  the frozen arrays, so it can score any emitted allocation without a
  line of scheduler code.

Because the capture path uses the pool's own prediction interface and
Python's JSON round-trips floats via shortest-repr, a rebuilt world and a
loaded instance agree bit-for-bit — the property the differential tests
pin down.

The JSONL format follows :mod:`repro.sim.trace_io`: deliberately plain
JSON, one self-describing object per line, explicit ``ValueError`` on
anything malformed.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.core.resources import ResourcePool
from repro.jacobi.grid import JacobiProblem
from repro.nws.service import NetworkWeatherService
from repro.sim.testbeds import Testbed, sdsc_pcl_testbed, synthetic_metacomputer

__all__ = [
    "INSTANCE_SCHEMA",
    "ALLOCATION_SCHEMA",
    "INSTANCE_CLASSES",
    "MachineState",
    "ArenaInstance",
    "ArenaAllocation",
    "build_world",
    "capture_instance",
    "generate_instances",
    "save_instances",
    "load_instances",
    "save_allocations",
    "load_allocations",
]

INSTANCE_SCHEMA = "repro.arena.instance/v1"
ALLOCATION_SCHEMA = "repro.arena.allocation/v1"

#: Instance classes, stratified by pool size: ``sdsc8`` is the paper's
#: 8-host SDSC/PCL testbed (exhaustive enumeration reaches it), ``synth14``
#: a 14-host synthetic metacomputer — beyond the selector's 2^12 - 1
#: exhaustive bound, where the greedy ladder used to be an unmeasured
#: fallback.  ``contended14`` is ``synth14`` with a second concurrent
#: request: a greedy *contender* schedules first and occupies the machines
#: it wins, so the captured decision problem sees a pool already carrying
#: reserved load — the regime the reservation layer's conflict detection
#: lives in.
INSTANCE_CLASSES: dict[str, dict] = {
    "sdsc8": {"generator": "sdsc", "n_hosts": 8, "n_segments": None},
    "synth14": {"generator": "synthetic", "n_hosts": 14, "n_segments": 3},
    "contended14": {"generator": "contended", "n_hosts": 14, "n_segments": 3},
}

#: Default problem edge lengths cycled across the instances of one class.
DEFAULT_SIZES = (600, 900, 1200)


@dataclass(frozen=True)
class MachineState:
    """One machine's frozen static + forecast state."""

    name: str
    site: str
    arch: str
    speed_mflops: float
    memory_available_mb: float
    availability: float
    availability_error: float


@dataclass(frozen=True)
class ArenaInstance:
    """One frozen scheduling problem.

    ``latency_s``/``bandwidth_bps`` are full directed matrices over the
    machines in order (diagonal: 0 latency, infinite bandwidth); entries
    come verbatim from the pool's prediction interface, so the verifier's
    ``latency + bytes / bandwidth`` reproduces the pool's transfer
    forecasts bit-for-bit.
    """

    instance_id: str
    instance_class: str
    world: dict
    machines: tuple[MachineState, ...]
    latency_s: tuple[tuple[float, ...], ...]
    bandwidth_bps: tuple[tuple[float, ...], ...]
    problem: dict
    params: dict = field(
        default_factory=lambda: {
            "conservatism_sigmas": 1.0,
            "risk_aversion": 2.0,
            "metric": "execution_time",
            "account_memory": True,
        }
    )

    @property
    def machine_names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self.machines)

    @property
    def total_points(self) -> float:
        n = int(self.problem["n"])
        return float(n * n)

    def machine(self, name: str) -> MachineState:
        for m in self.machines:
            if m.name == name:
                return m
        raise KeyError(name)

    def jacobi_problem(self) -> JacobiProblem:
        """The request as a live :class:`JacobiProblem`."""
        p = self.problem
        return JacobiProblem(
            n=int(p["n"]),
            iterations=int(p["iterations"]),
            flop_per_point=float(p["flop_per_point"]),
            bytes_per_point=float(p["bytes_per_point"]),
            border_bytes_per_point=float(p["border_bytes_per_point"]),
            sync_overhead_s=float(p["sync_overhead_s"]),
        )

    # -- serialisation -----------------------------------------------------
    def to_json_dict(self) -> dict:
        return {
            "schema": INSTANCE_SCHEMA,
            "instance_id": self.instance_id,
            "class": self.instance_class,
            "world": self.world,
            "machines": [vars(m).copy() for m in self.machines],
            "latency_s": [list(row) for row in self.latency_s],
            "bandwidth_bps": [list(row) for row in self.bandwidth_bps],
            "problem": self.problem,
            "params": self.params,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ArenaInstance":
        """Parse and validate one instance object (raises ``ValueError``)."""
        if not isinstance(payload, dict):
            raise ValueError("instance record must be a JSON object")
        schema = payload.get("schema")
        if schema != INSTANCE_SCHEMA:
            raise ValueError(
                f"unsupported instance schema {schema!r} (want {INSTANCE_SCHEMA})"
            )
        try:
            machines = tuple(
                MachineState(
                    name=str(m["name"]),
                    site=str(m["site"]),
                    arch=str(m["arch"]),
                    speed_mflops=float(m["speed_mflops"]),
                    memory_available_mb=float(m["memory_available_mb"]),
                    availability=float(m["availability"]),
                    availability_error=float(m["availability_error"]),
                )
                for m in payload["machines"]
            )
            instance = cls(
                instance_id=str(payload["instance_id"]),
                instance_class=str(payload["class"]),
                world=dict(payload["world"]),
                machines=machines,
                latency_s=tuple(
                    tuple(float(v) for v in row) for row in payload["latency_s"]
                ),
                bandwidth_bps=tuple(
                    tuple(float(v) for v in row) for row in payload["bandwidth_bps"]
                ),
                problem=dict(payload["problem"]),
                params=dict(payload["params"]),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed instance record: {exc!r}") from exc
        instance.validate()
        return instance

    def validate(self) -> None:
        """Structural sanity; every violation is a ``ValueError``."""
        n = len(self.machines)
        if n < 1:
            raise ValueError("instance needs at least one machine")
        names = [m.name for m in self.machines]
        if len(set(names)) != n:
            raise ValueError(f"duplicate machine names: {names}")
        for m in self.machines:
            if m.speed_mflops <= 0:
                raise ValueError(f"{m.name}: speed_mflops must be > 0")
            if m.memory_available_mb < 0:
                raise ValueError(f"{m.name}: memory_available_mb must be >= 0")
            if not (0.0 <= m.availability <= 1.0):
                raise ValueError(f"{m.name}: availability outside [0, 1]")
            if m.availability_error < 0:
                raise ValueError(f"{m.name}: availability_error must be >= 0")
        for label, matrix in (
            ("latency_s", self.latency_s),
            ("bandwidth_bps", self.bandwidth_bps),
        ):
            if len(matrix) != n or any(len(row) != n for row in matrix):
                raise ValueError(f"{label} must be a {n}x{n} matrix")
            for row in matrix:
                for v in row:
                    if v < 0:
                        raise ValueError(f"{label} entries must be >= 0")
        for key in ("n", "iterations", "flop_per_point", "bytes_per_point",
                    "border_bytes_per_point", "sync_overhead_s"):
            if key not in self.problem:
                raise ValueError(f"problem is missing {key!r}")
        if int(self.problem["n"]) < 1 or int(self.problem["iterations"]) < 1:
            raise ValueError("problem n and iterations must be >= 1")
        for key in ("conservatism_sigmas", "risk_aversion", "metric",
                    "account_memory"):
            if key not in self.params:
                raise ValueError(f"params is missing {key!r}")
        if self.params["metric"] != "execution_time":
            raise ValueError(
                f"unsupported metric {self.params['metric']!r}: the arena "
                f"verifier scores execution_time instances"
            )


@dataclass(frozen=True)
class ArenaAllocation:
    """One scheduler's emitted answer for one instance.

    ``machines`` in strip order with ``points`` grid points each — the
    complete observable outcome.  ``claimed_objective`` is whatever the
    producing policy *believed* its objective was (``None`` when it makes
    no forecast-based claim); the verifier never trusts it.
    """

    instance_id: str
    policy: str
    machines: tuple[str, ...]
    points: tuple[float, ...]
    claimed_objective: float | None = None

    def to_json_dict(self) -> dict:
        return {
            "schema": ALLOCATION_SCHEMA,
            "instance_id": self.instance_id,
            "policy": self.policy,
            "machines": list(self.machines),
            "points": list(self.points),
            "claimed_objective": self.claimed_objective,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ArenaAllocation":
        if not isinstance(payload, dict):
            raise ValueError("allocation record must be a JSON object")
        schema = payload.get("schema")
        if schema != ALLOCATION_SCHEMA:
            raise ValueError(
                f"unsupported allocation schema {schema!r} "
                f"(want {ALLOCATION_SCHEMA})"
            )
        try:
            claimed = payload["claimed_objective"]
            return cls(
                instance_id=str(payload["instance_id"]),
                policy=str(payload["policy"]),
                machines=tuple(str(m) for m in payload["machines"]),
                points=tuple(float(p) for p in payload["points"]),
                claimed_objective=None if claimed is None else float(claimed),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed allocation record: {exc!r}") from exc


# -- world construction ----------------------------------------------------
def build_world(world: dict) -> tuple[Testbed, NetworkWeatherService]:
    """Rebuild the live testbed + NWS a ``world`` spec describes.

    Worlds are pure functions of their seeds, so a policy rebuilding one
    sees bit-for-bit the forecasts the instance captured.
    """
    generator = world.get("generator")
    if generator == "sdsc":
        testbed = sdsc_pcl_testbed(seed=int(world["seed"]))
    elif generator == "synthetic":
        testbed = synthetic_metacomputer(
            int(world["n_hosts"]),
            int(world["n_segments"]),
            seed=int(world["seed"]),
        )
    elif generator == "contended":
        return _build_contended_world(world)
    else:
        raise ValueError(f"unknown world generator {generator!r}")
    nws = NetworkWeatherService.for_testbed(testbed, seed=int(world["nws_seed"]))
    nws.warmup(float(world["warmup_s"]))
    return testbed, nws


def _build_contended_world(world: dict) -> tuple[Testbed, NetworkWeatherService]:
    """Two concurrent requests: a greedy contender books the pool first.

    The contender schedules its own problem on the freshly-warmed pool and
    occupies the machines it wins (through the same
    :class:`~repro.sim.load.IntervalLoad` substrate scheduled applications
    use), then the NWS sensors observe the occupied pool for ``observe_s``
    before the decision instant.  Every step is a pure function of the
    world's seeds, so rebuilds stay bit-identical.
    """
    # Imported here: the plain world generators must not pull the agent
    # stack into the arena's import graph.
    from repro.core.selector import ResourceSelector
    from repro.jacobi.apples import make_jacobi_agent
    from repro.sim.jobs import make_injectable

    testbed = synthetic_metacomputer(
        int(world["n_hosts"]),
        int(world["n_segments"]),
        seed=int(world["seed"]),
    )
    injectors = make_injectable(testbed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=int(world["nws_seed"]))
    nws.warmup(float(world["warmup_s"]))
    contender = JacobiProblem(
        n=int(world["contender_n"]),
        iterations=int(world["contender_iterations"]),
    )
    agent = make_jacobi_agent(
        testbed, contender, nws,
        selector=ResourceSelector(regime="greedy"),
    )
    decision = agent.schedule()
    now = nws.now
    level = float(world["contender_level"])
    hold = float(world["contender_hold_s"])
    for name in decision.best.resource_set:
        injectors[name].occupy(now, now + hold, level)
    nws.advance_to(now + float(world["observe_s"]))
    return testbed, nws


def capture_instance(
    testbed: Testbed,
    nws: NetworkWeatherService,
    problem: JacobiProblem,
    world: dict,
    instance_id: str,
    instance_class: str,
) -> ArenaInstance:
    """Freeze the pool's current forecast state into an instance."""
    pool = ResourcePool(testbed.topology, nws)
    forecasts = pool.snapshot().export_forecasts()
    names = pool.machine_names()
    machines = []
    for name in names:
        info = pool.machine_info(name)
        f = forecasts[name]
        machines.append(
            MachineState(
                name=name,
                site=info.site,
                arch=info.arch,
                speed_mflops=info.speed_mflops,
                memory_available_mb=info.memory_available_mb,
                availability=f["availability"],
                availability_error=f["availability_error"],
            )
        )
    latency = tuple(
        tuple(
            0.0 if a == b else testbed.topology.path_latency(a, b) for b in names
        )
        for a in names
    )
    bandwidth = tuple(
        tuple(
            float("inf") if a == b else pool.predicted_bandwidth(a, b)
            for b in names
        )
        for a in names
    )
    return ArenaInstance(
        instance_id=instance_id,
        instance_class=instance_class,
        world=dict(world),
        machines=tuple(machines),
        latency_s=latency,
        bandwidth_bps=bandwidth,
        problem={
            "n": problem.n,
            "iterations": problem.iterations,
            "flop_per_point": problem.flop_per_point,
            "bytes_per_point": problem.bytes_per_point,
            "border_bytes_per_point": problem.border_bytes_per_point,
            "sync_overhead_s": problem.sync_overhead_s,
        },
    )


def generate_instances(
    instance_class: str,
    count: int,
    seed: int = 2024,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    iterations: int = 40,
) -> list[ArenaInstance]:
    """Seeded, stratified instance generation for one class.

    Instance ``k`` of a class gets its own world seed, NWS seed and warmup
    horizon, and cycles the problem edge length through ``sizes`` — so one
    class spans several load states and problem scales while staying fully
    reproducible from ``(instance_class, count, seed, sizes, iterations)``.
    """
    spec = INSTANCE_CLASSES.get(instance_class)
    if spec is None:
        raise ValueError(
            f"unknown instance class {instance_class!r} "
            f"(have: {sorted(INSTANCE_CLASSES)})"
        )
    if count < 1:
        raise ValueError("count must be >= 1")
    if not sizes:
        raise ValueError("sizes must be non-empty")
    instances = []
    for k in range(count):
        world = {
            "generator": spec["generator"],
            "n_hosts": spec["n_hosts"],
            "n_segments": spec["n_segments"],
            "seed": seed + 17 * k,
            "nws_seed": seed + 1009 + k,
            "warmup_s": 300.0 + 60.0 * (k % 5),
        }
        if spec["generator"] == "contended":
            world.update(
                contender_n=500 + 100 * (k % 3),
                contender_iterations=300,
                contender_hold_s=1800.0,
                contender_level=0.35,
                observe_s=120.0,
            )
        testbed, nws = build_world(world)
        problem = JacobiProblem(n=sizes[k % len(sizes)], iterations=iterations)
        instances.append(
            capture_instance(
                testbed,
                nws,
                problem,
                world,
                instance_id=f"{instance_class}-s{seed}-{k:03d}",
                instance_class=instance_class,
            )
        )
    return instances


# -- JSONL persistence ------------------------------------------------------
def save_instances(
    path: str | pathlib.Path, instances: list[ArenaInstance]
) -> None:
    """Write instances to ``path``, one JSON object per line."""
    if not instances:
        raise ValueError("refusing to write an empty instance file")
    lines = [json.dumps(inst.to_json_dict()) for inst in instances]
    pathlib.Path(path).write_text("\n".join(lines) + "\n")


def load_instances(path: str | pathlib.Path) -> list[ArenaInstance]:
    """Read an instance JSONL file back (``ValueError`` on malformed lines)."""
    return _load_jsonl(path, ArenaInstance.from_json_dict, "instance")


def save_allocations(
    path: str | pathlib.Path, allocations: list[ArenaAllocation]
) -> None:
    """Write allocations to ``path``, one JSON object per line."""
    if not allocations:
        raise ValueError("refusing to write an empty allocation file")
    lines = [json.dumps(a.to_json_dict()) for a in allocations]
    pathlib.Path(path).write_text("\n".join(lines) + "\n")


def load_allocations(path: str | pathlib.Path) -> list[ArenaAllocation]:
    """Read an allocation JSONL file back (``ValueError`` on malformed lines)."""
    return _load_jsonl(path, ArenaAllocation.from_json_dict, "allocation")


def _load_jsonl(path, parse, kind):
    records = []
    text = pathlib.Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{lineno}: not a JSON {kind} record"
            ) from exc
        try:
            records.append(parse(payload))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
    if not records:
        raise ValueError(f"{path}: no {kind} records found")
    return records

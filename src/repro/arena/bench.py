"""Regret-vs-exhaustive scoring: the arena's scoreboard.

For every (instance, policy) pair the verifier produces an objective; the
exhaustive AppLeS oracle's verified objective on the same instance is the
ground truth.  A policy's **regret** on an instance is::

    regret = (objective - oracle_objective) / oracle_objective

so 0.0 means "as good as trying every subset" and 0.10 means 10% slower
than optimal.  Regret is aggregated per (class, policy): mean and max over
the instances where the policy's allocation was *feasible* (infeasible
answers are counted separately — they score infinity, and averaging
infinities tells you nothing a count doesn't).

Everything here consumes frozen instances and allocations; the scoring
path never imports policy code (see :mod:`repro.arena.verifier`).  The
``fractional_floor`` column is informational: the uncapacitated fractional
balance over the whole pool (:func:`repro.core.planner.fractional_time_floor`)
— a bound no integer strip schedule can beat, showing how much of the
oracle's time is structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arena.instances import (
    ArenaAllocation,
    ArenaInstance,
    generate_instances,
)
from repro.arena.policies import POLICY_NAMES, run_policies_timed
from repro.arena.verifier import verify_allocation
from repro.core.planner import fractional_time_floor
from repro.util.tables import Table

__all__ = ["PolicyScore", "RegretResult", "score_allocations", "run_regret_bench"]

ORACLE = "exhaustive"


@dataclass
class PolicyScore:
    """Aggregated verdicts for one (class, policy) pair."""

    instance_class: str
    policy: str
    regrets: list[float] = field(default_factory=list)
    objectives: list[float] = field(default_factory=list)
    wins: int = 0
    infeasible: int = 0
    scored: int = 0

    @property
    def mean_regret(self) -> float:
        return sum(self.regrets) / len(self.regrets) if self.regrets else float("inf")

    @property
    def max_regret(self) -> float:
        return max(self.regrets) if self.regrets else float("inf")

    @property
    def mean_objective(self) -> float:
        return (
            sum(self.objectives) / len(self.objectives)
            if self.objectives
            else float("inf")
        )

    def as_json(self) -> dict:
        return {
            "class": self.instance_class,
            "policy": self.policy,
            "scored": self.scored,
            "feasible": len(self.regrets),
            "infeasible": self.infeasible,
            "wins": self.wins,
            "mean_regret": self.mean_regret,
            "max_regret": self.max_regret,
            "mean_objective": self.mean_objective,
        }


@dataclass
class RegretResult:
    """One regret-bench run: per-pair scores plus per-instance detail.

    ``seconds`` maps ``(instance_class, policy)`` to the wall-clock cost
    of that policy's decisions over the class's instances (empty when the
    scoring came from frozen JSONL files — pure scoring has no decision
    wall-clock to report).
    """

    scores: list[PolicyScore]
    detail: list[dict]
    floors: dict[str, float]
    seconds: dict[tuple[str, str], float] = field(default_factory=dict)

    def score(self, instance_class: str, policy: str) -> PolicyScore:
        for s in self.scores:
            if s.instance_class == instance_class and s.policy == policy:
                return s
        raise KeyError((instance_class, policy))

    def table(self, mask_seconds: bool = False) -> str:
        """The scoreboard.  A ``seconds`` column appears whenever timings
        were recorded; ``mask_seconds=True`` keeps the column but renders
        ``-`` placeholders, so golden-table tests can pin the shape without
        pinning volatile wall-clock values."""
        headers = [
            "class",
            "policy",
            "instances",
            "feasible",
            "wins",
            "mean regret %",
            "max regret %",
            "mean objective s",
        ]
        timed = bool(self.seconds)
        if timed:
            headers.append("seconds")
        table = Table(headers, title="Arena: regret vs exhaustive oracle")
        for s in self.scores:
            row = [
                s.instance_class,
                s.policy,
                s.scored,
                len(s.regrets),
                s.wins,
                "inf" if s.mean_regret == float("inf") else f"{100 * s.mean_regret:.3f}",
                "inf" if s.max_regret == float("inf") else f"{100 * s.max_regret:.3f}",
                "inf"
                if s.mean_objective == float("inf")
                else f"{s.mean_objective:.2f}",
            ]
            if timed:
                elapsed = self.seconds.get((s.instance_class, s.policy))
                row.append(
                    "-"
                    if mask_seconds or elapsed is None
                    else f"{elapsed:.2f}"
                )
            table.add(*row)
        lines = [table.render(), ""]
        for klass in sorted(self.floors):
            lines.append(
                f"fractional floor ({klass}): {self.floors[klass]:.2f} s "
                f"mean uncapacitated balance over the full pool"
            )
        return "\n".join(lines)

    def as_json(self) -> dict:
        seconds: dict[str, dict[str, float]] = {}
        for (klass, policy), elapsed in sorted(self.seconds.items()):
            seconds.setdefault(klass, {})[policy] = elapsed
        return {
            "scores": [s.as_json() for s in self.scores],
            "floors": dict(self.floors),
            "seconds": seconds,
            "detail": self.detail,
        }


def score_allocations(
    instances: list[ArenaInstance],
    allocations: list[ArenaAllocation],
    oracle: str = ORACLE,
) -> RegretResult:
    """Verify every allocation and aggregate regret against the oracle.

    Pure scoring: both inputs may come straight from JSONL files written by
    processes this one has never imported.  Instances without a feasible
    oracle answer get ``None`` regret (their objectives still aggregate).
    """
    by_id = {inst.instance_id: inst for inst in instances}
    reports = []
    for alloc in allocations:
        inst = by_id.get(alloc.instance_id)
        if inst is None:
            raise ValueError(
                f"allocation references unknown instance {alloc.instance_id!r}"
            )
        reports.append((inst, alloc, verify_allocation(inst, alloc)))

    oracle_objective: dict[str, float] = {}
    for inst, alloc, report in reports:
        if alloc.policy == oracle and report.feasible:
            oracle_objective[inst.instance_id] = report.objective

    scores: dict[tuple[str, str], PolicyScore] = {}
    detail = []
    for inst, alloc, report in reports:
        key = (inst.instance_class, alloc.policy)
        score = scores.get(key)
        if score is None:
            score = PolicyScore(inst.instance_class, alloc.policy)
            scores[key] = score
        score.scored += 1
        base = oracle_objective.get(inst.instance_id)
        regret = None
        if not report.feasible:
            score.infeasible += 1
        else:
            score.objectives.append(report.objective)
            if base is not None:
                regret = (report.objective - base) / base
                score.regrets.append(regret)
                if regret <= 0.0:
                    score.wins += 1
        detail.append(
            {
                "instance": inst.instance_id,
                "class": inst.instance_class,
                "policy": alloc.policy,
                "feasible": report.feasible,
                "reason": report.reason,
                "objective": report.objective,
                "claimed": alloc.claimed_objective,
                "regret": regret,
            }
        )

    ordered = sorted(
        scores.values(), key=lambda s: (s.instance_class, s.mean_regret, s.policy)
    )
    floors = _fractional_floors(instances)
    return RegretResult(scores=ordered, detail=detail, floors=floors)


def _fractional_floors(instances: list[ArenaInstance]) -> dict[str, float]:
    """Mean uncapacitated fractional balance time per instance class."""
    sums: dict[str, list[float]] = {}
    for inst in instances:
        sigmas = float(inst.params["conservatism_sigmas"])
        flop = float(inst.problem["flop_per_point"])
        sync = float(inst.problem["sync_overhead_s"])
        rates = []
        for m in inst.machines:
            pessimistic = max(
                m.availability - sigmas * m.availability_error,
                0.05 * m.availability,
            )
            rates.append(m.speed_mflops * pessimistic / flop)
        floor = fractional_time_floor(
            rates, [sync] * len(rates), inst.total_points
        ) * float(inst.problem["iterations"])
        sums.setdefault(inst.instance_class, []).append(floor)
    return {k: sum(v) / len(v) for k, v in sums.items()}


def run_regret_bench(
    classes: tuple[str, ...] = ("sdsc8", "synth14"),
    per_class: int = 6,
    seed: int = 2024,
    sizes: tuple[int, ...] | None = None,
    iterations: int = 40,
    policies: tuple[str, ...] = POLICY_NAMES,
) -> tuple[list[ArenaInstance], list[ArenaAllocation], RegretResult]:
    """Generate → run the portfolio → verify → aggregate, in one call."""
    instances: list[ArenaInstance] = []
    for klass in classes:
        kwargs = {} if sizes is None else {"sizes": sizes}
        instances.extend(
            generate_instances(
                klass, per_class, seed=seed, iterations=iterations, **kwargs
            )
        )
    allocations, seconds = run_policies_timed(instances, policies)
    result = score_allocations(instances, allocations)
    result.seconds.update(seconds)
    return instances, allocations, result

"""Standalone allocation verifier: score any schedule from the instance alone.

This module deliberately imports **no scheduler code** — no selector, no
planner, no cost model, no pool.  Everything it needs is frozen in the
:class:`~repro.arena.instances.ArenaInstance`: machine forecasts, the
latency/bandwidth matrices, the request, and the planning parameters.
That independence is the point: a verifier that shared code with the
policies could inherit their bugs; this one re-derives the reference
(non-fastpath) objective arithmetic from first principles, so any policy's
claim can be checked against an implementation it cannot influence.

Feasibility checks (each failure is a named reason):

- ``unknown-machine`` / ``duplicate-machine`` / ``shape-mismatch`` —
  structural.
- ``non-positive-points`` — every strip must hold work (the planners never
  emit zero-area strips).
- ``work-dropped`` — work conservation: the points must sum to exactly
  ``n²``.
- ``capacity-overflow`` — a strip must fit the machine's real memory
  (checked only when the instance's ``account_memory`` is set).
- ``zero-rate`` — a member whose conservative speed forecast is zero
  cannot finish any work before the barrier.
- ``unroutable`` — a border exchange over a dead link takes forever.

The objective replicates, term for term, the reference estimator path for
the ``execution_time`` metric::

    speed_i = speed_mflops * max(avail - sigmas*err, 0.05*avail)
    rate_i  = speed_i / flop_per_point
    T_i     = area_i * (1/rate_i) + transfer(prev) + transfer(next) + sync
    exec    = max_i T_i * iterations
    score   = exec * (1 + risk_aversion * max_i err_i / max(avail_i, 0.05))

with ``transfer(a, b) = latency[a][b] + exchange_bytes / bandwidth[a][b]``
and the predecessor transfer added before the successor, matching the
reference summation order bit-for-bit.  Memory paging multiplies in a
slowdown of exactly 1.0 whenever the strip fits in real memory, which the
capacity check guarantees — so the verifier can omit the paging model
entirely and still be bit-identical on every feasible allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arena.instances import ArenaAllocation, ArenaInstance
from repro.obs import get_tracer

__all__ = ["VerifierReport", "verify_allocation", "score_allocation"]


@dataclass(frozen=True)
class VerifierReport:
    """The verdict on one allocation."""

    feasible: bool
    reasons: tuple[str, ...] = ()
    objective: float = float("inf")
    step_time: float = float("inf")
    risk: float = 0.0
    machine_times: tuple[float, ...] = field(default_factory=tuple)

    @property
    def reason(self) -> str:
        return "; ".join(self.reasons) if self.reasons else "ok"


def _transfer_seconds(
    instance: ArenaInstance, idx: dict[str, int], a: str, b: str, nbytes: float
) -> float:
    """``predicted_transfer_time`` re-derived from the frozen matrices."""
    if a == b or nbytes <= 0:
        return 0.0
    bw = instance.bandwidth_bps[idx[a]][idx[b]]
    if bw <= 0.0:
        return float("inf")
    return instance.latency_s[idx[a]][idx[b]] + nbytes / bw


def verify_allocation(
    instance: ArenaInstance, allocation: ArenaAllocation
) -> VerifierReport:
    """Check feasibility and compute the exact reference objective.

    Pure function of the two frozen records; never consults the policy
    that produced the allocation (it cannot — the policy is just a string
    label here).
    """
    tracer = get_tracer()
    with tracer.span(
        "arena.verify",
        instance=instance.instance_id,
        policy=allocation.policy,
    ):
        report = _verify(instance, allocation)
        if tracer.enabled:
            tracer.metrics.counter("arena.verifier.checked").inc()
            if not report.feasible:
                tracer.metrics.counter("arena.verifier.rejected").inc()
                for reason in report.reasons:
                    tracer.metrics.counter(
                        "arena.verifier.rejected." + reason
                    ).inc()
        return report


def _verify(instance: ArenaInstance, allocation: ArenaAllocation) -> VerifierReport:
    reasons: list[str] = []
    machines = allocation.machines
    points = allocation.points
    known = set(instance.machine_names)

    if len(machines) != len(points) or not machines:
        return VerifierReport(False, ("shape-mismatch",))
    for m in machines:
        if m not in known:
            reasons.append(f"unknown-machine:{m}")
    if len(set(machines)) != len(machines):
        reasons.append("duplicate-machine")
    if reasons:
        return VerifierReport(False, tuple(reasons))

    for m, pts in zip(machines, points):
        if pts <= 0.0:
            reasons.append(f"non-positive-points:{m}")
    # Work conservation is exact: areas are integer row counts times n,
    # far below 2^53, so float equality is the right test.
    if sum(points) != instance.total_points:
        reasons.append("work-dropped")

    params = instance.params
    problem = instance.problem
    sigmas = float(params["conservatism_sigmas"])
    risk_aversion = float(params["risk_aversion"])
    account_memory = bool(params["account_memory"])
    flop_per_point = float(problem["flop_per_point"])
    bytes_per_point = float(problem["bytes_per_point"])
    sync = float(problem["sync_overhead_s"])
    exchange = 2.0 * float(problem["n"]) * float(problem["border_bytes_per_point"])
    idx = {m.name: j for j, m in enumerate(instance.machines)}

    states = [instance.machine(m) for m in machines]
    rates = []
    for state, pts in zip(states, points):
        # Conservative deliverable speed, exactly as the pool derives it.
        pessimistic = max(
            state.availability - sigmas * state.availability_error,
            0.05 * state.availability,
        )
        speed = state.speed_mflops * pessimistic
        rate = 0.0 if speed <= 0.0 else speed / flop_per_point
        rates.append(rate)
        if rate <= 0.0:
            reasons.append(f"zero-rate:{state.name}")
        if account_memory:
            capacity = state.memory_available_mb * 1e6 / bytes_per_point
            footprint_mb = pts * bytes_per_point / 1e6
            # Both faces of the memory constraint: the balancer's capacity
            # cap and the paging model's fits-in-real-memory check (the
            # latter is what makes the slowdown factor exactly 1.0).
            if pts > capacity or footprint_mb > state.memory_available_mb:
                reasons.append(f"capacity-overflow:{state.name}")

    comms = []
    for i, m in enumerate(machines):
        c = 0.0
        for nbr_idx in (i - 1, i + 1):
            if 0 <= nbr_idx < len(machines):
                c += _transfer_seconds(
                    instance, idx, m, machines[nbr_idx], exchange
                )
        if c == float("inf"):
            reasons.append(f"unroutable:{m}")
        comms.append(c)

    if reasons:
        return VerifierReport(False, tuple(reasons))

    # T_i = A_i * P_i + C_i + sync — the reference machine_time loop.
    times = tuple(
        pts * (1.0 / rate) + c + sync
        for pts, rate, c in zip(points, rates, comms)
    )
    step = max(times)
    execution = step * float(problem["iterations"])

    # Worst relative availability-forecast error across the members.
    risk = 0.0
    for state in states:
        if state.availability > 0:
            risk = max(
                risk,
                state.availability_error / max(state.availability, 0.05),
            )
    objective = execution * (1.0 + risk_aversion * risk)
    return VerifierReport(
        feasible=True,
        objective=objective,
        step_time=step,
        risk=risk,
        machine_times=times,
    )


def score_allocation(
    instance: ArenaInstance, allocation: ArenaAllocation
) -> float:
    """The verified objective, ``inf`` for infeasible allocations."""
    return verify_allocation(instance, allocation).objective

"""The scheduler arena: frozen instances, standalone verification, regret.

Three pieces, deliberately decoupled:

- :mod:`repro.arena.instances` — seeded generation and JSONL persistence
  of frozen scheduling problems (pool + request + NWS forecast state);
- :mod:`repro.arena.verifier` — feasibility and exact reference-objective
  scoring of any emitted allocation, importing zero scheduler code;
- :mod:`repro.arena.policies` / :mod:`repro.arena.bench` — the baseline
  portfolio and regret-vs-exhaustive aggregation.

``python -m repro arena`` drives generate / score / verify / report from
the command line; ``--smoke`` runs a self-checking end-to-end pass.
"""

from repro.arena.bench import (
    PolicyScore,
    RegretResult,
    run_regret_bench,
    score_allocations,
)
from repro.arena.instances import (
    ALLOCATION_SCHEMA,
    INSTANCE_CLASSES,
    INSTANCE_SCHEMA,
    ArenaAllocation,
    ArenaInstance,
    MachineState,
    build_world,
    capture_instance,
    generate_instances,
    load_allocations,
    load_instances,
    save_allocations,
    save_instances,
)
from repro.arena.policies import (
    EXHAUSTIVE_CEILING,
    POLICY_NAMES,
    make_policy,
    run_policies,
)
from repro.arena.verifier import VerifierReport, score_allocation, verify_allocation

__all__ = [
    "ALLOCATION_SCHEMA",
    "INSTANCE_CLASSES",
    "INSTANCE_SCHEMA",
    "EXHAUSTIVE_CEILING",
    "POLICY_NAMES",
    "ArenaAllocation",
    "ArenaInstance",
    "MachineState",
    "PolicyScore",
    "RegretResult",
    "VerifierReport",
    "build_world",
    "capture_instance",
    "generate_instances",
    "load_allocations",
    "load_instances",
    "make_policy",
    "run_policies",
    "run_regret_bench",
    "save_allocations",
    "save_instances",
    "score_allocation",
    "score_allocations",
    "verify_allocation",
]

"""Offline forecaster evaluation (backtesting).

"Developing useful predictive models is key to the success of any
scheduling strategy" (§3.6).  Before trusting a forecaster family on a
new resource class, the NWS operator backtests it on recorded traces;
this module provides that workflow: replay a trace through any forecaster
(or the whole family plus the adaptive ensemble) and score the one-step
predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.nws.ensemble import AdaptiveEnsemble
from repro.nws.forecasters import Forecaster, default_forecaster_family
from repro.obs.trace import get_tracer

__all__ = ["BacktestResult", "evaluate_forecaster", "backtest_family"]


@dataclass(frozen=True)
class BacktestResult:
    """Scores of one predictor over one trace.

    Attributes
    ----------
    name:
        Forecaster name.
    mse / mae:
        Mean squared / absolute one-step error.
    bias:
        Mean signed error (prediction − actual); positive = optimistic
        for availability traces.
    predictions:
        The one-step predictions, aligned with ``trace[1:]``.
    """

    name: str
    mse: float
    mae: float
    bias: float
    predictions: tuple[float, ...]

    @property
    def rmse(self) -> float:
        """Root mean squared error."""
        return float(np.sqrt(self.mse))


def _score(name: str, preds: list[float], actual: Sequence[float]) -> BacktestResult:
    p = np.asarray(preds, dtype=float)
    a = np.asarray(actual, dtype=float)
    err = p - a
    result = BacktestResult(
        name=name,
        mse=float(np.mean(err**2)),
        mae=float(np.mean(np.abs(err))),
        bias=float(np.mean(err)),
        predictions=tuple(preds),
    )
    tracer = get_tracer()
    if tracer.enabled:
        # Per-forecaster error used to exist only inside one experiment;
        # recording it here makes every backtest observable.
        tracer.event(
            "nws.backtest", layer="nws",
            forecaster=name, rmse=result.rmse, mae=result.mae,
            bias=result.bias, n=len(preds),
        )
        tracer.metrics.counter("nws.backtests").inc()
        tracer.metrics.gauge(f"nws.rmse.{name}").set(result.rmse)
        tracer.metrics.histogram("nws.backtest_rmse").observe(result.rmse)
    return result


def evaluate_forecaster(forecaster: Forecaster, trace: Sequence[float]) -> BacktestResult:
    """Replay ``trace`` through ``forecaster``, scoring one-step predictions.

    The forecaster predicts ``trace[k]`` after seeing ``trace[:k]``; the
    first element is never predicted (there is nothing to predict it
    from).  Requires at least two points.
    """
    trace = list(trace)
    if len(trace) < 2:
        raise ValueError("backtest needs a trace of at least 2 points")
    preds: list[float] = []
    for i, value in enumerate(trace):
        if i > 0:
            preds.append(forecaster.forecast())
        forecaster.update(value)
    return _score(forecaster.name, preds, trace[1:])


def backtest_family(
    trace: Sequence[float],
    family_factory=default_forecaster_family,
    include_ensemble: bool = True,
) -> list[BacktestResult]:
    """Backtest a whole family plus the adaptive ensemble over one trace.

    ``family_factory`` is a zero-argument callable returning *fresh*
    forecaster instances (forecasters are stateful, and the ensemble needs
    its own copies).  Returns results sorted by MSE, best first — the
    leaderboard an operator reads before deploying.
    """
    trace = list(trace)
    if len(trace) < 2:
        raise ValueError("backtest needs a trace of at least 2 points")
    results = [evaluate_forecaster(m, trace) for m in family_factory()]
    if include_ensemble:
        ens = AdaptiveEnsemble(family_factory())
        preds: list[float] = []
        for i, value in enumerate(trace):
            if i > 0:
                preds.append(ens.forecast().value)
            ens.update(value)
        results.append(_score("ensemble", preds, trace[1:]))
    results.sort(key=lambda r: r.mse)
    return results

"""The Network Weather Service facade.

One object owning a sensor per host and per link of a testbed.  Experiment
loops call :meth:`advance_to` as simulated time passes; AppLeS subsystems
query :meth:`cpu_forecast`, :meth:`path_bandwidth_forecast` and
:meth:`path_latency` when planning.  Until a sensor has data, queries fall
back to *nominal* values — exactly the degradation mode of a real system
whose monitors have not warmed up.
"""

from __future__ import annotations

from repro.nws.ensemble import NOMINAL_FORECAST, Forecast
from repro.nws.sensors import CpuSensor, LinkSensor
from repro.obs.trace import get_tracer
from repro.sim.testbeds import Testbed
from repro.sim.topology import Topology
from repro.util import perf
from repro.util.rng import RngStream
from repro.util.validation import check_nonnegative

__all__ = ["NetworkWeatherService"]


class NetworkWeatherService:
    """Sensors + forecasts for every resource in a topology.

    Parameters
    ----------
    topology:
        The metacomputer to monitor.
    cpu_period / net_period:
        Sensor sampling periods in simulated seconds.
    noise_std:
        Measurement noise for both sensor kinds.
    seed:
        Seed for measurement-noise streams.
    """

    def __init__(
        self,
        topology: Topology,
        cpu_period: float = 10.0,
        net_period: float = 15.0,
        noise_std: float = 0.02,
        seed: int = 7,
    ) -> None:
        self.topology = topology
        rng = RngStream(seed, "nws")
        self.cpu_sensors: dict[str, CpuSensor] = {
            name: CpuSensor(host, period=cpu_period, noise_std=noise_std,
                            rng=rng.child(f"cpu:{name}"))
            for name, host in topology.hosts.items()
        }
        self.link_sensors: dict[str, LinkSensor] = {
            name: LinkSensor(link, period=net_period, noise_std=noise_std,
                             rng=rng.child(f"net:{name}"))
            for name, link in topology.links.items()
        }
        self.now = 0.0
        # Monotone counter bumped on every advance_to(); snapshot holders
        # (repro.nws.snapshot) use it to detect that their view went stale.
        self.epoch = 0
        # Between advance_to() calls every sensor's state is frozen, so
        # forecast queries are pure; planners issue thousands of them per
        # schedule.  Caches are invalidated whenever time advances.
        self._fast = perf.fastpath_enabled()
        self._cpu_cache: dict[str, Forecast] = {}
        self._path_bw_cache: dict[tuple[str, str, int], float] = {}
        self._latency_cache: dict[tuple[str, str], float] = {}

    @classmethod
    def for_testbed(cls, testbed: Testbed, **kwargs) -> "NetworkWeatherService":
        """Construct a service monitoring every resource of ``testbed``."""
        return cls(testbed.topology, **kwargs)

    # -- time ----------------------------------------------------------------
    def advance_to(self, t: float) -> None:
        """Take all sensor measurements due up to simulated time ``t``."""
        check_nonnegative("t", t)
        if t < self.now:
            raise ValueError(f"cannot advance backwards: {t} < {self.now}")
        tracer = get_tracer()
        with tracer.span(
            "nws.advance", layer="nws", t=self.now,
            sensors=len(self.cpu_sensors) + len(self.link_sensors),
        ) as span:
            for sensor in self.cpu_sensors.values():
                sensor.advance_to(t)
            for sensor in self.link_sensors.values():
                sensor.advance_to(t)
            if tracer.enabled:
                span.set_end(t)
                tracer.metrics.counter("nws.advances").inc()
        self.now = t
        self.epoch += 1
        self._cpu_cache.clear()
        self._path_bw_cache.clear()

    def warmup(self, duration: float) -> None:
        """Advance sensors by ``duration`` (typically before the first schedule)."""
        self.advance_to(self.now + check_nonnegative("duration", duration))

    # -- queries ------------------------------------------------------------
    def cpu_forecast(self, host: str) -> Forecast:
        """Forecast availability fraction for ``host``.

        Falls back to a nominal (availability 1.0, infinite-uncertainty-free)
        forecast if the sensor has no data yet.
        """
        tracer = get_tracer()
        if self._fast:
            cached = self._cpu_cache.get(host)
            if cached is not None:
                if tracer.enabled:
                    tracer.metrics.counter("nws.cpu_cache_hits").inc()
                return cached
        if tracer.enabled:
            tracer.metrics.counter("nws.cpu_cache_misses").inc()
        sensor = self._cpu(host)
        if not sensor.ready:
            result = NOMINAL_FORECAST
        else:
            result = sensor.forecast()
        if self._fast:
            self._cpu_cache[host] = result
        return result

    def effective_speed_forecast(self, host: str) -> float:
        """Predicted deliverable MFLOP/s of ``host`` (memory effects excluded)."""
        h = self.topology.host(host)
        return h.speed_mflops * max(0.0, min(1.0, self.cpu_forecast(host).value))

    def link_forecast(self, link: str) -> Forecast:
        """Forecast deliverable-bandwidth fraction for one link."""
        try:
            sensor = self.link_sensors[link]
        except KeyError:
            raise KeyError(f"no sensor for link {link!r}") from None
        if not sensor.ready:
            return NOMINAL_FORECAST
        return sensor.forecast()

    def path_bandwidth_forecast(self, a: str, b: str, flows: int = 1) -> float:
        """Predicted bottleneck bytes/s between hosts ``a`` and ``b``."""
        tracer = get_tracer()
        if self._fast:
            cached = self._path_bw_cache.get((a, b, flows))
            if cached is not None:
                if tracer.enabled:
                    tracer.metrics.counter("nws.bandwidth_cache_hits").inc()
                return cached
        if tracer.enabled:
            tracer.metrics.counter("nws.bandwidth_cache_misses").inc()
        links = self.topology.route(a, b)
        if not links:
            result = float("inf")
        else:
            bws = []
            for link in links:
                sensor = self.link_sensors[link.name]
                if sensor.ready:
                    bws.append(sensor.forecast_bandwidth(flows))
                else:
                    # Nominal fallback: full availability.
                    nominal = link.deliverable_bandwidth(0.0, flows) / max(
                        link.load.availability(0.0), 1e-12
                    )
                    bws.append(nominal)
            result = min(bws)
        if self._fast:
            self._path_bw_cache[(a, b, flows)] = result
        return result

    def path_latency(self, a: str, b: str) -> float:
        """Route latency (static; the 1996 NWS forecast latency too, but the
        testbed experiments here are bandwidth-dominated)."""
        if self._fast:
            cached = self._latency_cache.get((a, b))
            if cached is not None:
                return cached
        result = self.topology.path_latency(a, b)
        if self._fast:
            self._latency_cache[(a, b)] = result
        return result

    def transfer_time_forecast(self, a: str, b: str, nbytes: float, flows: int = 1) -> float:
        """Predicted seconds to move ``nbytes`` from ``a`` to ``b``."""
        check_nonnegative("nbytes", nbytes)
        if a == b:
            return 0.0
        bw = self.path_bandwidth_forecast(a, b, flows)
        if bw <= 0.0:
            return float("inf")
        return self.path_latency(a, b) + nbytes / bw

    def _cpu(self, host: str) -> CpuSensor:
        try:
            return self.cpu_sensors[host]
        except KeyError:
            raise KeyError(f"no sensor for host {host!r}") from None

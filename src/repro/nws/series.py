"""Bounded measurement time series.

Sensors append ``(time, value)`` pairs; forecasters and diagnostics read
windows off the tail.  The store is bounded (the real NWS kept a fixed-size
history per resource) and enforces monotonically non-decreasing timestamps.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.util.validation import check_positive

__all__ = ["TimeSeries"]


class TimeSeries:
    """A bounded series of timestamped measurements."""

    def __init__(self, name: str = "", maxlen: int = 4096) -> None:
        check_positive("maxlen", maxlen)
        self.name = name
        self._times: deque[float] = deque(maxlen=int(maxlen))
        self._values: deque[float] = deque(maxlen=int(maxlen))
        self.total_observations = 0

    def append(self, t: float, value: float) -> None:
        """Record one measurement; timestamps must not decrease."""
        if self._times and t < self._times[-1]:
            raise ValueError(
                f"timestamps must be non-decreasing: {t} < {self._times[-1]}"
            )
        self._times.append(float(t))
        self._values.append(float(value))
        self.total_observations += 1

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def last_time(self) -> float:
        """Timestamp of the latest measurement."""
        if not self._times:
            raise IndexError(f"series {self.name!r} is empty")
        return self._times[-1]

    @property
    def last_value(self) -> float:
        """Latest measurement value."""
        if not self._values:
            raise IndexError(f"series {self.name!r} is empty")
        return self._values[-1]

    def values(self, window: int | None = None) -> list[float]:
        """The last ``window`` values (all values if None)."""
        if window is None:
            return list(self._values)
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if window >= len(self._values):
            return list(self._values)
        return list(self._values)[-window:]

    def times(self, window: int | None = None) -> list[float]:
        """The last ``window`` timestamps (all if None)."""
        if window is None:
            return list(self._times)
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if window >= len(self._times):
            return list(self._times)
        return list(self._times)[-window:]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeSeries({self.name!r}, n={len(self)})"

"""Sensors: periodic measurement of simulated resources.

The real NWS ran lightweight probes — a CPU sensor reading load averages
and an active network probe timing small transfers.  Here sensors read the
simulator's ground truth and add measurement noise, then feed an
:class:`~repro.nws.ensemble.AdaptiveEnsemble` per metric.

Sensors are *pull-driven*: ``advance_to(t)`` takes all measurements due up
to time ``t``.  This keeps the NWS usable both from plain experiment loops
and from :class:`~repro.sim.engine.Simulator` processes.
"""

from __future__ import annotations

from repro.nws.ensemble import AdaptiveEnsemble, Forecast
from repro.nws.series import TimeSeries
from repro.sim.host import Host
from repro.sim.link import Link
from repro.util import perf
from repro.util.rng import RngStream
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["CpuSensor", "LinkSensor"]


class _PeriodicSensor:
    """Shared machinery: fixed-period sampling with clock state."""

    def __init__(self, name: str, period: float, noise_std: float, rng: RngStream) -> None:
        check_positive("period", period)
        check_nonnegative("noise_std", noise_std)
        self.name = name
        self.period = float(period)
        self.noise_std = float(noise_std)
        self.rng = rng
        self.series = TimeSeries(name)
        self.ensemble = AdaptiveEnsemble()
        self._next_sample = 0.0

    def _measure(self, t: float) -> float:
        raise NotImplementedError

    def advance_to(self, t: float) -> int:
        """Take every measurement due in ``(last, t]``; returns how many."""
        taken = 0
        while self._next_sample <= t:
            ts = self._next_sample
            value = self._measure(ts)
            self.series.append(ts, value)
            self.ensemble.update(value)
            self._next_sample += self.period
            taken += 1
        return taken

    def forecast(self) -> Forecast:
        """Current one-step-ahead forecast for this metric."""
        return self.ensemble.forecast()

    @property
    def ready(self) -> bool:
        """True once at least one measurement has been taken."""
        return len(self.series) > 0


class CpuSensor(_PeriodicSensor):
    """Measures a host's CPU availability.

    Noise models the jitter of load-average probes; measurements are clipped
    to [0, 1] like real availability fractions.
    """

    def __init__(
        self,
        host: Host,
        period: float = 10.0,
        noise_std: float = 0.02,
        rng: RngStream | None = None,
    ) -> None:
        super().__init__(
            name=f"cpu:{host.name}",
            period=period,
            noise_std=noise_std,
            rng=rng if rng is not None else RngStream(0, f"cpu:{host.name}"),
        )
        self.host = host

    def _measure(self, t: float) -> float:
        value = self.host.availability(t) + self.rng.normal(0.0, self.noise_std)
        return min(1.0, max(0.0, value))


class LinkSensor(_PeriodicSensor):
    """Measures a link's deliverable-bandwidth *fraction* (availability).

    Probing the fraction rather than absolute bytes/s lets one forecast
    serve every path through the link: the path forecast recombines each
    link's predicted fraction with its nominal bandwidth.
    """

    def __init__(
        self,
        link: Link,
        period: float = 15.0,
        noise_std: float = 0.03,
        rng: RngStream | None = None,
    ) -> None:
        super().__init__(
            name=f"net:{link.name}",
            period=period,
            noise_std=noise_std,
            rng=rng if rng is not None else RngStream(0, f"net:{link.name}"),
        )
        self.link = link
        # The nominal (availability == 1) bandwidth is static per flow
        # count; recomputing it per forecast query was a hot-path cost.
        self._nominal_cache: dict[int, float] = {}
        self._fast = perf.fastpath_enabled()

    def _measure(self, t: float) -> float:
        value = self.link.load.availability(t) + self.rng.normal(0.0, self.noise_std)
        return min(1.0, max(0.0, value))

    def forecast_bandwidth(self, flows: int = 1) -> float:
        """Predicted deliverable bytes/s for one of ``flows`` concurrent flows."""
        fraction = min(1.0, max(0.0, self.forecast().value))
        # Reuse the link's own composition of nominal bandwidth, MAC
        # efficiency and flow sharing by probing it with availability == 1
        # and scaling by the forecast fraction.
        nominal = self._nominal_cache.get(flows) if self._fast else None
        if nominal is None:
            nominal = self.link.deliverable_bandwidth(t=0.0, flows=flows) / max(
                self.link.load.availability(0.0), 1e-12
            )
            self._nominal_cache[flows] = nominal
        return nominal * fraction

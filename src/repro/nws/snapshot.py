"""Forecast snapshots: one immutable NWS query per scheduling instant.

The Coordinator blueprint evaluates hundreds to thousands of candidate
resource sets per decision, and every candidate evaluation re-asks the
same questions — what is machine *m*'s deliverable speed, how long does a
border exchange between *a* and *b* take?  Between ``advance_to`` calls
the Network Weather Service's answers are pure, so the decision loop can
take **one** snapshot of every machine forecast up front and share it
across all candidate evaluations instead of re-deriving per candidate.

:class:`ForecastSnapshot` is exactly that: a frozen, memoising view over a
:class:`~repro.core.resources.ResourcePool` at a single simulated instant.
Machine quantities (speed, availability, forecast error) are captured
eagerly; pairwise quantities (bandwidth, transfer time) and derived
quantities (conservative speeds at a given sigma) are memoised on first
use, because the pair space is quadratic and most decisions touch only a
fraction of it.

Every value is obtained by calling the pool's own prediction interface, so
a snapshot is *bit-identical* to issuing the underlying queries directly —
it is a cache, never an approximation.  That property is what lets the
fast scheduling path (see :mod:`repro.core.coordinator`) promise decisions
identical to the reference implementation.

Snapshots do not follow time: if the NWS advances after the snapshot was
taken, :attr:`ForecastSnapshot.stale` turns true and the holder should
take a new one.  The Coordinator takes one snapshot per ``schedule()``
call, which is the intended lifetime.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports nws)
    from repro.core.resources import ResourcePool

__all__ = ["ForecastSnapshot"]


class ForecastSnapshot:
    """A frozen view of all machine/link forecasts at one instant.

    Parameters
    ----------
    pool:
        The resource pool to snapshot.  Works with or without an attached
        NWS (without one, the captured values are the nominal fallbacks,
        mirroring the pool's own behaviour).
    machines:
        Machine names to capture eagerly; defaults to every machine in the
        pool.
    """

    __slots__ = (
        "pool",
        "taken_at",
        "machines",
        "speed",
        "availability",
        "availability_error",
        "_epoch",
        "_conservative",
        "_bandwidth",
        "_transfer",
    )

    def __init__(self, pool: "ResourcePool", machines: Sequence[str] | None = None) -> None:
        self.pool = pool
        names = list(machines) if machines is not None else pool.machine_names()
        self.machines = tuple(names)
        nws = pool.nws
        self.taken_at = float(nws.now) if nws is not None else 0.0
        self._epoch = nws.epoch if nws is not None else 0
        # Eager capture: one pass over every machine forecast.
        self.speed = {n: pool.predicted_speed(n) for n in names}
        self.availability = {n: pool.predicted_availability(n) for n in names}
        self.availability_error = {
            n: pool.predicted_availability_error(n) for n in names
        }
        # Lazy memos for derived and pairwise quantities.
        self._conservative: dict[tuple[str, float], float] = {}
        self._bandwidth: dict[tuple[str, str, int], float] = {}
        self._transfer: dict[tuple[str, str, float, int], float] = {}

    # -- freshness ------------------------------------------------------------
    @property
    def stale(self) -> bool:
        """True when the NWS has advanced past the snapshot instant."""
        nws = self.pool.nws
        if nws is None:
            return False
        return nws.epoch != self._epoch or nws.now != self.taken_at

    # -- machine quantities ---------------------------------------------------
    def conservative_speed(self, name: str, sigmas: float = 1.0) -> float:
        """Memoised :meth:`ResourcePool.predicted_speed_conservative`."""
        key = (name, sigmas)
        value = self._conservative.get(key)
        if value is None:
            value = self.pool.predicted_speed_conservative(name, sigmas)
            self._conservative[key] = value
        return value

    def rates_vector(
        self, machines: Sequence[str], flop_per_unit: float, sigmas: float = 1.0
    ) -> np.ndarray:
        """Conservative point rates (units/s) for ``machines`` as an array.

        The vector form the batched balancer and the pruning bounds
        consume: ``conservative_speed / flop_per_unit`` per machine.
        """
        return np.array(
            [self.conservative_speed(m, sigmas) / flop_per_unit for m in machines],
            dtype=float,
        )

    # -- pairwise quantities --------------------------------------------------
    def bandwidth(self, a: str, b: str, flows: int = 1) -> float:
        """Memoised :meth:`ResourcePool.predicted_bandwidth`."""
        key = (a, b, flows)
        value = self._bandwidth.get(key)
        if value is None:
            value = self.pool.predicted_bandwidth(a, b, flows)
            self._bandwidth[key] = value
        return value

    def transfer_time(self, a: str, b: str, nbytes: float, flows: int = 1) -> float:
        """Memoised :meth:`ResourcePool.predicted_transfer_time`."""
        key = (a, b, nbytes, flows)
        value = self._transfer.get(key)
        if value is None:
            value = self.pool.predicted_transfer_time(a, b, nbytes, flows)
            self._transfer[key] = value
        return value

    def export_forecasts(self) -> dict[str, dict[str, float]]:
        """The eagerly-captured machine forecasts as plain serialisable data.

        ``{machine: {"availability": ..., "availability_error": ...,
        "speed": ...}}`` — exactly the floats the pool's prediction
        interface returned at the snapshot instant.  The scheduling arena
        freezes these into instance files so a standalone verifier can
        re-derive conservative speeds without a live NWS; round-tripping
        through JSON preserves them bit-for-bit (``repr``-based shortest
        round-trip).
        """
        return {
            name: {
                "availability": self.availability[name],
                "availability_error": self.availability_error[name],
                "speed": self.speed[name],
            }
            for name in self.machines
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ForecastSnapshot({len(self.machines)} machines at "
            f"t={self.taken_at}{', stale' if self.stale else ''})"
        )

"""Benchmark-based prediction sources (§3.6).

"Predictions can come from a variety of sources: application-specific or
application-independent benchmarks, user directives, statistical analysis,
sensed or sampled data, analytical models."  The statistical path is
:mod:`repro.nws.forecasters`; this module is the *benchmark* path: time a
known quantum of work on a host and infer its deliverable rate directly.

Two uses:

- calibrating a machine whose nominal rating is wrong or unknown
  (:func:`measure_effective_speed`, :func:`calibrate_nominal_speed`);
- :class:`BenchmarkCalibratedPool`, a resource pool whose speed
  predictions come from fresh probe measurements instead of catalogue
  numbers — the "application-independent benchmark" prediction source as
  a drop-in for planners.
"""

from __future__ import annotations

from repro.core.resources import ResourcePool
from repro.sim.topology import Topology
from repro.util.validation import check_positive

__all__ = [
    "measure_effective_speed",
    "calibrate_nominal_speed",
    "BenchmarkCalibratedPool",
]


def measure_effective_speed(
    topology: Topology, host: str, t: float, probe_mflop: float = 10.0
) -> float:
    """Time a probe of ``probe_mflop`` on ``host`` at ``t``; return MFLOP/s.

    This is what an actual benchmark process observes: *deliverable*
    speed, availability and paging included, averaged over the probe's
    own duration.
    """
    check_positive("probe_mflop", probe_mflop)
    machine = topology.host(host)
    duration = machine.time_to_compute(probe_mflop, t)
    if duration <= 0.0:
        return float("inf")  # pragma: no cover - zero-work guard upstream
    return probe_mflop / duration


def calibrate_nominal_speed(
    topology: Topology, host: str, t: float, probe_mflop: float = 10.0
) -> float:
    """Estimate the host's *nominal* rate by de-loading a probe measurement.

    Divides the measured deliverable rate by the mean availability over
    the probe window — recovering the catalogue number from observations,
    the calibration step a deployment would run once per machine.
    """
    machine = topology.host(host)
    measured = measure_effective_speed(topology, host, t, probe_mflop)
    duration = probe_mflop / measured
    avail = machine.load.mean_availability(t, t + duration)
    if avail <= 0.0:
        raise RuntimeError(f"host {host!r} delivered nothing during the probe")
    return measured / avail


class BenchmarkCalibratedPool(ResourcePool):
    """A resource pool predicting from fresh probe measurements.

    ``predicted_speed`` runs (or reuses, within ``ttl_s``) a probe on the
    target host at ``t_now`` — prediction by measurement rather than by
    forecast.  Accurate exactly at probe time, stale as load shifts; the
    information ablation uses it as the "benchmark source" point between
    nominal and NWS.
    """

    def __init__(
        self,
        topology: Topology,
        t_now: float,
        probe_mflop: float = 10.0,
        ttl_s: float = 60.0,
    ) -> None:
        super().__init__(topology, nws=None)
        self.t_now = float(t_now)
        self.probe_mflop = check_positive("probe_mflop", probe_mflop)
        self.ttl_s = check_positive("ttl_s", ttl_s)
        self._cache: dict[str, tuple[float, float]] = {}  # host -> (t, speed)

    def advance(self, t: float) -> None:
        """Move the pool's clock (probes older than ``ttl_s`` refresh)."""
        if t < self.t_now:
            raise ValueError("cannot move the clock backwards")
        self.t_now = float(t)

    def predicted_speed(self, name: str) -> float:
        cached = self._cache.get(name)
        if cached is not None and self.t_now - cached[0] <= self.ttl_s:
            return cached[1]
        speed = measure_effective_speed(
            self.topology, name, self.t_now, self.probe_mflop
        )
        self._cache[name] = (self.t_now, speed)
        return speed

    def predicted_availability(self, name: str) -> float:
        host = self.topology.host(name)
        return min(1.0, self.predicted_speed(name) / host.speed_mflops)

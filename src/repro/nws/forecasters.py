"""The NWS forecaster family.

"Predictions can come from a variety of sources: ... statistical analysis,
sensed or sampled data, analytical models" (§3.6).  The Network Weather
Service ran a battery of inexpensive statistical predictors over every
measurement stream — last value, running and windowed means, medians,
trimmed means, exponential smoothing with several gains, and autoregressive
fits — and let an adaptive layer (:mod:`repro.nws.ensemble`) pick among
them.  All of those predictors are implemented here behind one interface.

Every forecaster is *online*: ``update(value)`` folds in a new measurement,
``forecast()`` predicts the next one.  ``forecast()`` before any update
raises ``RuntimeError`` — the ensemble guards against that.

The windowed predictors are on the simulator's hottest path (the ensemble
stages every member's forecast on every sensor sample), so each maintains
incremental state — running sums, a sorted mirror of the window — instead
of rescanning its buffer per forecast.  The straightforward rescanning
implementations are retained behind :mod:`repro.util.perf`'s fast-path
switch as the reference the regression tests compare against.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque

import numpy as np

from repro.util import perf
from repro.util.validation import check_fraction, check_positive

__all__ = [
    "Forecaster",
    "LastValue",
    "RunningMean",
    "SlidingWindowMean",
    "MedianWindow",
    "TrimmedMeanWindow",
    "AdaptiveWindowMean",
    "ExponentialSmoothing",
    "ARForecaster",
    "default_forecaster_family",
]

#: Recompute incremental sums exactly from the buffer every this many
#: updates, bounding floating-point drift of the running-sum fast paths.
_RESYNC_EVERY = 512


class Forecaster:
    """Interface for online one-step-ahead predictors."""

    #: Human-readable name, set by subclasses.
    name: str = "forecaster"

    def __init__(self) -> None:
        self.observations = 0

    def update(self, value: float) -> None:
        """Fold one measurement into the model."""
        self.observations += 1
        self._update(float(value))

    def forecast(self) -> float:
        """Predict the next measurement."""
        if self.observations == 0:
            raise RuntimeError(f"{self.name}: forecast requested before any update")
        return self._forecast()

    # -- subclass hooks ------------------------------------------------------
    def _update(self, value: float) -> None:
        raise NotImplementedError

    def _forecast(self) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.observations})"


class LastValue(Forecaster):
    """Predict the most recent measurement (optimal for random walks)."""

    name = "last"

    def __init__(self) -> None:
        super().__init__()
        self._last = 0.0

    def _update(self, value: float) -> None:
        self._last = value

    def _forecast(self) -> float:
        return self._last


class RunningMean(Forecaster):
    """Predict the mean of the whole history (optimal for i.i.d. series)."""

    name = "run_mean"

    def __init__(self) -> None:
        super().__init__()
        self._sum = 0.0

    def _update(self, value: float) -> None:
        self._sum += value

    def _forecast(self) -> float:
        return self._sum / self.observations


class SlidingWindowMean(Forecaster):
    """Predict the mean of the last ``window`` measurements.

    A running sum is maintained on update (adding the new value, subtracting
    the evicted one), making a full-window forecast O(1) instead of an
    O(window) rescan.  The sum is resynchronised from the buffer every
    :data:`_RESYNC_EVERY` updates to bound floating-point drift.
    """

    def __init__(self, window: int = 16) -> None:
        super().__init__()
        check_positive("window", window)
        self.window = int(window)
        self.name = f"sw_mean({self.window})"
        self._buf: deque[float] = deque(maxlen=self.window)
        self._sum = 0.0
        self._fast = perf.fastpath_enabled()

    def _update(self, value: float) -> None:
        buf = self._buf
        if not self._fast:
            buf.append(value)
            return
        if len(buf) == self.window:
            self._sum -= buf[0]
        buf.append(value)
        self._sum += value
        if self.observations % _RESYNC_EVERY == 0:
            self._sum = sum(buf)

    def _forecast(self) -> float:
        if self._fast:
            return self._sum / len(self._buf)
        return sum(self._buf) / len(self._buf)


class _SortedWindowMixin:
    """Window buffer plus an incrementally-maintained sorted mirror.

    Order statistics (median, trimmed mean) over the window become slice
    reads of ``self._sorted`` instead of per-forecast sorts.
    """

    def _init_window(self, window: int) -> None:
        self._buf: deque[float] = deque(maxlen=window)
        self._sorted: list[float] = []

    def _push(self, value: float) -> None:
        buf = self._buf
        if not self._fast:  # reference path rescans; no mirror to maintain
            buf.append(value)
            return
        if len(buf) == buf.maxlen:
            evicted = buf[0]
            del self._sorted[bisect_left(self._sorted, evicted)]
        buf.append(value)
        insort(self._sorted, value)


class MedianWindow(_SortedWindowMixin, Forecaster):
    """Predict the median of the last ``window`` measurements.

    Robust to the load spikes that wreck mean-based predictors.
    """

    def __init__(self, window: int = 16) -> None:
        super().__init__()
        check_positive("window", window)
        self.window = int(window)
        self.name = f"median({self.window})"
        self._init_window(self.window)
        self._fast = perf.fastpath_enabled()

    def _update(self, value: float) -> None:
        self._push(value)

    def _forecast(self) -> float:
        if not self._fast:
            return float(np.median(list(self._buf)))
        data = self._sorted
        m = len(data)
        half = m // 2
        if m % 2:
            return data[half]
        return (data[half - 1] + data[half]) / 2.0


class TrimmedMeanWindow(_SortedWindowMixin, Forecaster):
    """Windowed mean after discarding a fraction of each tail.

    The sorted mirror of the window makes the trimmed core a slice instead
    of a per-forecast sort.
    """

    def __init__(self, window: int = 16, trim: float = 0.25) -> None:
        super().__init__()
        check_positive("window", window)
        check_fraction("trim", trim)
        if trim >= 0.5:
            raise ValueError(f"trim must be < 0.5, got {trim}")
        self.window = int(window)
        self.trim = trim
        self.name = f"trim_mean({self.window},{trim:g})"
        self._init_window(self.window)
        self._fast = perf.fastpath_enabled()

    def _update(self, value: float) -> None:
        self._push(value)

    def _forecast(self) -> float:
        if not self._fast:
            data = np.sort(np.asarray(self._buf, dtype=float))
            k = int(len(data) * self.trim)
            core = data[k : len(data) - k] if len(data) > 2 * k else data
            return float(core.mean())
        data = self._sorted
        m = len(data)
        k = int(m * self.trim)
        core = data[k : m - k] if m > 2 * k else data
        return sum(core) / len(core)


class ExponentialSmoothing(Forecaster):
    """EWMA predictor: ``s <- (1-g)*s + g*x``.

    The NWS ran several gains simultaneously and let the ensemble choose;
    :func:`default_forecaster_family` does the same.
    """

    def __init__(self, gain: float = 0.3) -> None:
        super().__init__()
        check_fraction("gain", gain)
        if gain == 0.0:
            raise ValueError("gain must be > 0")
        self.gain = gain
        self.name = f"exp_smooth({gain:g})"
        self._state = 0.0

    def _update(self, value: float) -> None:
        if self.observations == 1:
            self._state = value
        else:
            self._state = (1.0 - self.gain) * self._state + self.gain * value

    def _forecast(self) -> float:
        return self._state


class ARForecaster(Forecaster):
    """Autoregressive AR(p) predictor fit over a sliding window.

    Coefficients are refit by least squares every ``refit_every`` updates
    (fitting per-update would dominate sensor cost, as it did in the real
    NWS, which is why its AR models were also refit lazily).  Falls back to
    the window mean until enough data has accumulated or if the fit is
    ill-conditioned.
    """

    def __init__(self, order: int = 4, window: int = 64, refit_every: int = 8) -> None:
        super().__init__()
        check_positive("order", order)
        check_positive("window", window)
        check_positive("refit_every", refit_every)
        if window < 3 * order:
            raise ValueError("window must be at least 3x the AR order")
        self.order = int(order)
        self.window = int(window)
        self.refit_every = int(refit_every)
        self.name = f"ar({self.order})"
        self._buf: deque[float] = deque(maxlen=self.window)
        self._coef: np.ndarray | None = None
        self._intercept = 0.0
        self._since_fit = 0

    def _update(self, value: float) -> None:
        self._buf.append(value)
        self._since_fit += 1
        if self._since_fit >= self.refit_every and len(self._buf) >= 2 * self.order + 2:
            self._fit()
            self._since_fit = 0

    def _fit(self) -> None:
        data = np.asarray(self._buf, dtype=float)
        p = self.order
        # Design matrix of lagged values: rows predict data[p:].
        rows = len(data) - p
        x = np.empty((rows, p + 1))
        x[:, 0] = 1.0
        for lag in range(1, p + 1):
            x[:, lag] = data[p - lag : p - lag + rows]
        y = data[p:]
        try:
            theta, *_ = np.linalg.lstsq(x, y, rcond=None)
        except np.linalg.LinAlgError:  # pragma: no cover - lstsq rarely raises
            return
        if not np.all(np.isfinite(theta)):
            return
        self._intercept = float(theta[0])
        self._coef = theta[1:]

    def _forecast(self) -> float:
        if self._coef is None or len(self._buf) < self.order:
            return float(np.mean(self._buf))
        recent = list(self._buf)[-self.order :][::-1]  # most recent first
        return self._intercept + float(np.dot(self._coef, recent))


class AdaptiveWindowMean(Forecaster):
    """Windowed mean whose window size adapts to the series.

    The production NWS shipped adaptive-window mean/median predictors:
    several window sizes are scored continuously by their one-step squared
    error (exponentially discounted) and the current best window's mean is
    reported.  Long windows win on stationary stretches, short ones after
    regime changes.

    One running sum per window size replaces the per-update slice-and-sum
    over every window; sums are resynchronised from the buffer every
    :data:`_RESYNC_EVERY` updates to bound floating-point drift.
    """

    def __init__(self, windows: tuple[int, ...] = (4, 8, 16, 32), decay: float = 0.95) -> None:
        super().__init__()
        if not windows:
            raise ValueError("need at least one window size")
        for w in windows:
            check_positive("window", w)
        if not (0.0 < decay <= 1.0):
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.windows = tuple(int(w) for w in sorted(set(windows)))
        self.decay = decay
        self.name = f"adapt_mean({','.join(str(w) for w in self.windows)})"
        self._buf: deque[float] = deque(maxlen=max(self.windows))
        self._err = {w: 0.0 for w in self.windows}
        self._weight = {w: 0.0 for w in self.windows}
        self._sums = {w: 0.0 for w in self.windows}
        self._fast = perf.fastpath_enabled()

    def _window_mean(self, w: int) -> float:
        if self._fast:
            count = min(len(self._buf), w)
            return self._sums[w] / count
        data = list(self._buf)[-w:]
        return sum(data) / len(data)

    def _update(self, value: float) -> None:
        buf = self._buf
        if buf:
            decay = self.decay
            for w in self.windows:
                err = (self._window_mean(w) - value) ** 2
                self._err[w] = decay * self._err[w] + err
                self._weight[w] = decay * self._weight[w] + 1.0
        if not self._fast:
            buf.append(value)
            return
        # Each window-w running sum gains the new value and loses the
        # element that was w-th from the right before the append.
        length = len(buf)
        for w in self.windows:
            if length >= w:
                self._sums[w] += value - buf[length - w]
            else:
                self._sums[w] += value
        buf.append(value)
        if self.observations % _RESYNC_EVERY == 0:
            data = list(buf)
            for w in self.windows:
                self._sums[w] = sum(data[-w:])

    def best_window(self) -> int:
        """The window size currently winning (smallest on ties/unscored)."""
        best, best_mse = self.windows[0], float("inf")
        for w in self.windows:
            if self._weight[w] > 0:
                mse = self._err[w] / self._weight[w]
                if mse < best_mse:
                    best, best_mse = w, mse
        return best

    def _forecast(self) -> float:
        return self._window_mean(self.best_window())


def default_forecaster_family() -> list[Forecaster]:
    """The default NWS battery: one instance of each predictor style.

    Mirrors the mix the production NWS shipped: last value, running mean,
    sliding means/medians/trimmed means at two window sizes, exponential
    smoothing at three gains, and a windowed AR fit.
    """
    return [
        LastValue(),
        RunningMean(),
        SlidingWindowMean(8),
        SlidingWindowMean(32),
        MedianWindow(8),
        MedianWindow(32),
        TrimmedMeanWindow(16, 0.25),
        AdaptiveWindowMean(),
        ExponentialSmoothing(0.1),
        ExponentialSmoothing(0.3),
        ExponentialSmoothing(0.6),
        ARForecaster(order=4, window=64),
    ]

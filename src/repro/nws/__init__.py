"""Network Weather Service (NWS) substrate.

The paper's AppLeS agents consume "dynamic information on system state and
forecasts of resource load for the time frame in which the application will
be scheduled" from the Network Weather Service (§4.1).  The original NWS
(Wolski's companion system) measured CPU availability and network
bandwidth/latency periodically and ran a *family* of cheap forecasters over
each measurement series, dynamically selecting whichever forecaster had the
lowest accumulated error.

This subpackage reproduces that design against the simulator:

- :mod:`repro.nws.series` — bounded measurement series,
- :mod:`repro.nws.forecasters` — the forecaster family,
- :mod:`repro.nws.ensemble` — the adaptive minimum-error ensemble,
- :mod:`repro.nws.sensors` — CPU and link sensors over :mod:`repro.sim`,
- :mod:`repro.nws.service` — the facade AppLeS agents query,
- :mod:`repro.nws.snapshot` — frozen one-instant forecast views for the
  scheduling fast path.
"""

from repro.nws.ensemble import AdaptiveEnsemble, Forecast
from repro.nws.evaluation import BacktestResult, backtest_family, evaluate_forecaster
from repro.nws.host_bench import (
    BenchmarkCalibratedPool,
    calibrate_nominal_speed,
    measure_effective_speed,
)
from repro.nws.forecasters import (
    AdaptiveWindowMean,
    ARForecaster,
    ExponentialSmoothing,
    Forecaster,
    LastValue,
    MedianWindow,
    RunningMean,
    SlidingWindowMean,
    TrimmedMeanWindow,
    default_forecaster_family,
)
from repro.nws.sensors import CpuSensor, LinkSensor
from repro.nws.series import TimeSeries
from repro.nws.service import NetworkWeatherService
from repro.nws.snapshot import ForecastSnapshot

__all__ = [
    "TimeSeries",
    "Forecaster",
    "AdaptiveWindowMean",
    "LastValue",
    "RunningMean",
    "SlidingWindowMean",
    "MedianWindow",
    "TrimmedMeanWindow",
    "ExponentialSmoothing",
    "ARForecaster",
    "default_forecaster_family",
    "AdaptiveEnsemble",
    "BacktestResult",
    "backtest_family",
    "evaluate_forecaster",
    "BenchmarkCalibratedPool",
    "calibrate_nominal_speed",
    "measure_effective_speed",
    "Forecast",
    "ForecastSnapshot",
    "CpuSensor",
    "LinkSensor",
    "NetworkWeatherService",
]

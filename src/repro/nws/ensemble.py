"""Adaptive minimum-error forecaster ensemble.

The distinguishing trick of the Network Weather Service: instead of picking
one statistical model per resource, run *all* of them, score each by the
error of its past one-step-ahead predictions, and report the prediction of
whichever model is currently winning, together with an error estimate.
"A schedule is only as good as the accuracy of its underlying predictions"
(§3.6) — the error estimate is what lets a scheduler know how much to trust
the number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.nws.forecasters import Forecaster, default_forecaster_family
from repro.util import perf

__all__ = ["Forecast", "AdaptiveEnsemble", "NOMINAL_FORECAST"]


@dataclass(frozen=True)
class Forecast:
    """A prediction with provenance.

    Attributes
    ----------
    value:
        The predicted next measurement.
    error:
        RMS of the winning forecaster's past one-step errors (0.0 until two
        predictions have been scored).
    method:
        Name of the forecaster that produced the value.
    observations:
        Number of measurements behind the prediction.
    """

    value: float
    error: float
    method: str
    observations: int


#: The degradation-mode answer for a sensor with no data yet: nominal full
#: availability with no uncertainty.  ``Forecast`` is frozen, so one shared
#: instance serves every cold query instead of an allocation per call.
NOMINAL_FORECAST = Forecast(value=1.0, error=0.0, method="nominal", observations=0)


class AdaptiveEnsemble:
    """Run a forecaster family in parallel; answer with the current best.

    Scoring uses exponentially-discounted squared error (``decay`` per
    observation) so the winner can change as the series' character changes —
    a mean-like predictor wins on stationary stretches, last-value wins on
    random-walk stretches.

    Parameters
    ----------
    members:
        The forecaster family; defaults to
        :func:`repro.nws.forecasters.default_forecaster_family`.
    decay:
        Error-discount factor in (0, 1]; 1.0 reduces to cumulative MSE.
    """

    def __init__(self, members: list[Forecaster] | None = None, decay: float = 0.98) -> None:
        self.members = members if members is not None else default_forecaster_family()
        if not self.members:
            raise ValueError("ensemble needs at least one member")
        names = [m.name for m in self.members]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate forecaster names in ensemble: {names}")
        if not (0.0 < decay <= 1.0):
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay
        # Discounted squared-error and weight per member.
        self._err: dict[str, float] = {n: 0.0 for n in names}
        self._weight: dict[str, float] = {n: 0.0 for n in names}
        self._pending: dict[str, float] | None = None
        self.observations = 0
        # The forecast is a pure function of ensemble state, which changes
        # only in update() — planners query it far more often than sensors
        # sample, so memoise it between updates.
        self._cached_forecast: Forecast | None = None
        self._fast = perf.fastpath_enabled()

    def update(self, value: float) -> None:
        """Score outstanding predictions against ``value``, then refit members."""
        value = float(value)
        if self._pending is not None:
            for name, predicted in self._pending.items():
                err = (predicted - value) ** 2
                self._err[name] = self.decay * self._err[name] + err
                self._weight[name] = self.decay * self._weight[name] + 1.0
        for member in self.members:
            member.update(value)
        self.observations += 1
        # Stage each member's next prediction for scoring on the next update.
        self._pending = {m.name: m.forecast() for m in self.members}
        self._cached_forecast = None

    def mse(self, name: str) -> float:
        """Discounted mean squared error of member ``name`` (inf if unscored)."""
        if name not in self._err:
            raise KeyError(f"no forecaster named {name!r}")
        w = self._weight[name]
        return self._err[name] / w if w > 0 else math.inf

    def best_member(self) -> Forecaster:
        """The member with the lowest discounted MSE (first-listed wins ties,
        so earlier members act as priors before any scoring happens)."""
        best = self.members[0]
        best_mse = self.mse(best.name)
        for member in self.members[1:]:
            m = self.mse(member.name)
            if m < best_mse:
                best, best_mse = member, m
        return best

    def forecast(self) -> Forecast:
        """Predict the next measurement using the current best member."""
        if self.observations == 0:
            raise RuntimeError("ensemble: forecast requested before any update")
        if self._fast and self._cached_forecast is not None:
            return self._cached_forecast
        best = self.best_member()
        mse = self.mse(best.name)
        result = Forecast(
            value=best.forecast(),
            error=math.sqrt(mse) if math.isfinite(mse) else 0.0,
            method=best.name,
            observations=self.observations,
        )
        if self._fast:
            self._cached_forecast = result
        return result

    def leaderboard(self) -> list[tuple[str, float]]:
        """All members with their discounted MSE, best first."""
        rows = [(m.name, self.mse(m.name)) for m in self.members]
        rows.sort(key=lambda pair: pair[1])
        return rows

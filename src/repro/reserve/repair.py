"""Planning and incremental repair over the reservation ledger.

The second half of request-driven scheduling: once requests are expanded
and booked, the world keeps moving — new requests arrive, forecasts go
stale, forced bookings conflict.  A from-scratch re-plan re-decides every
occurrence; :meth:`ReservationPlanner.repair` instead isolates the
*affected* bookings and walks a strategy ladder per booking, cheapest
first:

1. **shift-within-window** — slide the booking (arrays, machines and
   duration untouched) to the earliest free slot inside its occurrence
   windows.  Zero decisions.
2. **shrink-toward-min** — re-decide at the original instant restricted
   to the booking's surviving (un-contested) machines, if at least
   ``min_machines`` survive.  One decision.
3. **re-expand** — full expansion of the occurrence against the current
   ledger.  ``instants_per_window`` decisions.  Invalidated bookings go
   straight here: their frozen evidence is stale by assumption.
4. **bump-by-priority** — evict one strictly lower-priority conflicting
   booking, place, and push the evictee back onto the worklist (each
   booking is evicted at most once per repair, and a bump chain strictly
   descends the priority order, so cascades terminate).

Everything the ladder never touches stays *the same object* — repair
replaces bookings, it never mutates them — which is the property the
differential harness checks with ``is``-identity rather than tolerance.

:class:`RepairSweep` is the same idea at a different layer: the
:class:`~repro.jacobi.adaptive.AdaptiveJacobiRunner`'s mid-run
reschedules re-decide over a :class:`~repro.core.selector.SeededSelector`
neighbourhood of the incumbent winner instead of re-running the full
blueprint enumeration.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.core.selector import SeededSelector
from repro.core.userspec import UserSpecification
from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.nws.service import NetworkWeatherService
from repro.obs.trace import get_tracer
from repro.reserve.expand import Expander
from repro.reserve.ledger import Booking, ReservationLedger
from repro.reserve.requests import ReservationRequest
from repro.sim.testbeds import Testbed

__all__ = [
    "STRATEGIES",
    "RepairAction",
    "RepairStats",
    "PlanOutcome",
    "RepairOutcome",
    "ReservationPlanner",
    "RepairSweep",
]

#: The repair ladder, cheapest first (documented order == attempted order).
STRATEGIES = (
    "shift-within-window",
    "shrink-toward-min",
    "re-expand",
    "bump-by-priority",
)

#: Strategy label for brand-new requests placed during repair.
_NEW = "expand-new"


@dataclass(frozen=True)
class RepairAction:
    """One booking the repair (or plan) pass placed."""

    booking_id: str  # the original booking; "" for new-request placements
    request_id: str
    occurrence: int
    strategy: str
    replacement_id: str


@dataclass
class RepairStats:
    """What one repair pass did, and what it cost."""

    conflicts_found: int = 0
    invalidated: int = 0
    shifted: int = 0
    shrunk: int = 0
    reexpanded: int = 0
    bumped: int = 0
    placed_new: int = 0
    rejected: int = 0
    decisions: int = 0
    expansions: int = 0

    def snapshot(self) -> dict:
        return dict(vars(self))


@dataclass
class PlanOutcome:
    """Result of a from-scratch :meth:`ReservationPlanner.plan`."""

    ledger: ReservationLedger
    booked: tuple[str, ...]
    rejected: tuple[tuple[str, int], ...]
    decisions: int
    expansions: int


@dataclass
class RepairOutcome:
    """Result of one :meth:`ReservationPlanner.repair` pass."""

    ledger: ReservationLedger
    actions: tuple[RepairAction, ...]
    rejected: tuple[tuple[str, int], ...]
    untouched: tuple[str, ...]
    stats: RepairStats = field(default_factory=RepairStats)

    @property
    def repaired(self) -> dict[str, str]:
        """``original booking id -> strategy`` for every repaired booking."""
        return {
            a.booking_id: a.strategy for a in self.actions if a.strategy != _NEW
        }

    @property
    def booked(self) -> tuple[str, ...]:
        """Booking ids placed for brand-new requests."""
        return tuple(a.replacement_id for a in self.actions if a.strategy == _NEW)


class ReservationPlanner:
    """Greedy booking plus incremental repair over one world.

    The planner owns an :class:`~repro.reserve.expand.Expander` (and hence
    one rebuildable world) and a registry of the requests it has seen —
    repair needs each booking's original constraints, so bookings of
    unregistered requests cannot be repaired (``ValueError``).

    Booking order is (priority class, submission order): the strongest
    class plans first, matching the DSN practice the repair ladder's
    bump strategy mirrors.
    """

    def __init__(
        self,
        world: dict | None = None,
        factory=None,
        instants_per_window: int = 3,
        label: str = "reserve",
    ) -> None:
        self.expander = Expander(
            world=world,
            factory=factory,
            instants_per_window=instants_per_window,
            label=label,
        )
        self.requests: dict[str, ReservationRequest] = {}

    def register(self, requests) -> None:
        """Admit requests to the registry (idempotent; ``ValueError`` when
        an id is reused for a *different* request)."""
        for r in requests:
            known = self.requests.get(r.request_id)
            if known is not None and known != r:
                raise ValueError(
                    f"request id {r.request_id!r} already registered "
                    f"with different content"
                )
            self.requests[r.request_id] = r

    # -- from-scratch planning ----------------------------------------------
    def plan(
        self,
        requests: list[ReservationRequest],
        ledger: ReservationLedger | None = None,
    ) -> PlanOutcome:
        """Book every occurrence of ``requests`` greedily into ``ledger``."""
        self.register(requests)
        if ledger is None:
            ledger = ReservationLedger()
        d0 = self.expander.stats.decisions
        e0 = self.expander.stats.expansions
        booked: list[str] = []
        rejected: list[tuple[str, int]] = []
        order = sorted(
            range(len(requests)), key=lambda i: (requests[i].priority, i)
        )
        for i in order:
            request = requests[i]
            for occ in range(request.repeat_count):
                booking = self.expander.expand(request, occ, ledger)
                if booking is None:
                    rejected.append((request.request_id, occ))
                else:
                    ledger.book(booking)
                    booked.append(booking.booking_id)
        return PlanOutcome(
            ledger=ledger,
            booked=tuple(booked),
            rejected=tuple(rejected),
            decisions=self.expander.stats.decisions - d0,
            expansions=self.expander.stats.expansions - e0,
        )

    # -- incremental repair --------------------------------------------------
    def repair(
        self,
        ledger: ReservationLedger,
        new_requests: list[ReservationRequest] | tuple = (),
        invalidate: tuple[str, ...] | list[str] = (),
        requests: list[ReservationRequest] | tuple = (),
    ) -> RepairOutcome:
        """Patch ``ledger`` in place; untouched bookings stay identical.

        The affected set is the union of (a) losers of detected conflicts
        — the lower-priority booking of each overlapping pair, ties to the
        later-booked one — plus verifier-infeasible bookings, (b) the
        explicitly ``invalidate``\\ d booking ids (stale forecast
        evidence), and (c) every occurrence of ``new_requests``.  Only
        those enter the strategy ladder; nothing else is read, moved, or
        rebuilt.  ``requests`` registers known requests for bookings made
        elsewhere (e.g. a ledger loaded from JSONL).
        """
        tracer = get_tracer()
        self.register(requests)
        self.register(new_requests)
        stats = RepairStats()
        d0 = self.expander.stats.decisions
        e0 = self.expander.stats.expansions
        with tracer.span(
            "reserve.repair", layer="reserve",
            bookings=len(ledger), new=len(tuple(new_requests)),
            invalidated=len(tuple(invalidate)),
        ):
            outcome = self._repair(ledger, new_requests, invalidate, stats)
        stats.decisions = self.expander.stats.decisions - d0
        stats.expansions = self.expander.stats.expansions - e0
        if tracer.enabled:
            for action in outcome.actions:
                tracer.metrics.counter(
                    f"reserve.repaired.{action.strategy}"
                ).inc()
        return outcome

    def _repair(
        self,
        ledger: ReservationLedger,
        new_requests,
        invalidate,
        stats: RepairStats,
    ) -> RepairOutcome:
        invalid_ids = set(invalidate)
        for bid in invalid_ids:
            ledger.get(bid)  # KeyError on unknown ids, before any mutation
        order_index = {
            b.booking_id: i for i, b in enumerate(ledger.bookings)
        }

        # (a) conflict losers + infeasible bookings.
        affected: dict[str, str] = {}
        conflicts = ledger.conflicts()
        stats.conflicts_found = len(conflicts)
        for c in conflicts:
            if c.kind == "machine-overlap":
                a, b = (ledger.get(bid) for bid in c.booking_ids)
                loser = max(
                    (a, b),
                    key=lambda x: (x.priority, order_index[x.booking_id]),
                )
                affected.setdefault(loser.booking_id, "conflict")
            else:
                affected.setdefault(c.booking_ids[0], "infeasible")
        # (b) explicit invalidations override: stale evidence forces
        # re-expansion even if the booking also lost a conflict.
        for bid in invalid_ids:
            affected[bid] = "invalidated"
        stats.invalidated = len(invalid_ids)

        # Snapshot the pre-repair objects: ``untouched`` is decided at the
        # end by object identity, because the worklist can grow past the
        # initial affected set (bump evictions) and a shifted replacement
        # keeps its booking id.
        before = {b.booking_id: b for b in ledger.bookings}

        counter = itertools.count()
        heap: list = []

        def push_booking(booking: Booking, why: str) -> None:
            seq = order_index.setdefault(booking.booking_id, len(order_index))
            heapq.heappush(
                heap,
                (booking.priority, seq, next(counter), "booking", (booking, why)),
            )

        for bid, why in affected.items():
            push_booking(ledger.remove(bid), why)
        for i, request in enumerate(new_requests):
            for occ in range(request.repeat_count):
                heapq.heappush(
                    heap,
                    (
                        request.priority,
                        len(order_index) + i,
                        next(counter),
                        "request",
                        (request, occ),
                    ),
                )

        bumped: set[str] = set()
        actions: list[RepairAction] = []
        rejected: list[tuple[str, int]] = []
        while heap:
            _, _, _, kind, payload = heapq.heappop(heap)
            if kind == "booking":
                booking, why = payload
                request = self.requests.get(booking.request_id)
                if request is None:
                    raise ValueError(
                        f"cannot repair booking {booking.booking_id!r}: "
                        f"request {booking.request_id!r} is not registered "
                        f"(pass it via requests=)"
                    )
                action = self._repair_booking(
                    booking, request, why, ledger, stats, bumped, push_booking
                )
                if action is None:
                    stats.rejected += 1
                    rejected.append((booking.request_id, booking.occurrence))
                else:
                    actions.append(action)
            else:
                request, occ = payload
                placed = self._place(
                    request, occ, ledger, stats, bumped, push_booking
                )
                if placed is None:
                    stats.rejected += 1
                    rejected.append((request.request_id, occ))
                else:
                    replacement, strategy = placed
                    stats.placed_new += 1
                    actions.append(
                        RepairAction(
                            booking_id="",
                            request_id=request.request_id,
                            occurrence=occ,
                            strategy=_NEW,
                            replacement_id=replacement.booking_id,
                        )
                    )
        untouched = tuple(
            b.booking_id
            for b in ledger.bookings
            if before.get(b.booking_id) is b
        )
        return RepairOutcome(
            ledger=ledger,
            actions=tuple(actions),
            rejected=tuple(rejected),
            untouched=untouched,
            stats=stats,
        )

    # -- the strategy ladder -------------------------------------------------
    def _repair_booking(
        self,
        booking: Booking,
        request: ReservationRequest,
        why: str,
        ledger: ReservationLedger,
        stats: RepairStats,
        bumped: set[str],
        push_booking,
    ) -> RepairAction | None:
        occ = booking.occurrence

        def action(strategy: str, replacement: Booking) -> RepairAction:
            return RepairAction(
                booking_id=booking.booking_id,
                request_id=booking.request_id,
                occurrence=occ,
                strategy=strategy,
                replacement_id=replacement.booking_id,
            )

        # Invalidated evidence and verifier-infeasible bookings must not be
        # shifted or shrunk — both strategies would re-book the very arrays
        # under suspicion.  Straight to re-expansion.
        if why == "conflict" or why == "bumped":
            start = self._find_shift(booking, request, ledger)
            if start is not None:
                replacement = booking.shifted(start)
                ledger.book(replacement)
                stats.shifted += 1
                return action(STRATEGIES[0], replacement)

            deadline = request.occurrence_interval(occ)[1]
            survivors = frozenset(booking.machines) - ledger.busy_machines(
                booking.start, deadline
            )
            if len(survivors) >= request.min_machines:
                replacement = self.expander.expand(
                    request, occ, ledger,
                    accessible=survivors, instants=(booking.start,),
                )
                if replacement is not None:
                    ledger.book(replacement)
                    stats.shrunk += 1
                    return action(STRATEGIES[1], replacement)

        replacement = self.expander.expand(request, occ, ledger)
        if replacement is not None:
            ledger.book(replacement)
            stats.reexpanded += 1
            return action(STRATEGIES[2], replacement)

        placed = self._bump(request, occ, ledger, bumped, push_booking)
        if placed is not None:
            stats.bumped += 1
            return action(STRATEGIES[3], placed)
        return None

    def _place(
        self,
        request: ReservationRequest,
        occ: int,
        ledger: ReservationLedger,
        stats: RepairStats,
        bumped: set[str],
        push_booking,
    ) -> tuple[Booking, str] | None:
        """Place one new-request occurrence: expand, then bump if needed."""
        booking = self.expander.expand(request, occ, ledger)
        if booking is not None:
            ledger.book(booking)
            return booking, STRATEGIES[2]
        placed = self._bump(request, occ, ledger, bumped, push_booking)
        if placed is not None:
            stats.bumped += 1
            return placed, STRATEGIES[3]
        return None

    def _find_shift(
        self,
        booking: Booking,
        request: ReservationRequest,
        ledger: ReservationLedger,
    ) -> float | None:
        """Earliest in-window start where the booking's machines are free.

        Candidate starts are the window starts, the booking's own start,
        and the end instants of bookings sharing its machines — between
        consecutive candidates the busy set cannot change, so checking
        only these finds the earliest feasible slot exactly.
        """
        deadline = request.occurrence_interval(booking.occurrence)[1]
        machines = frozenset(booking.machines)
        for ws, we in request.occurrence_windows(booking.occurrence):
            starts = {ws}
            if ws <= booking.start < we:
                starts.add(booking.start)
            for other in ledger.overlapping(ws, deadline):
                if machines & frozenset(other.machines) and ws <= other.end < we:
                    starts.add(other.end)
            for s in sorted(starts):
                if s + booking.duration > deadline:
                    continue
                if ledger.busy_machines(s, s + booking.duration) & machines:
                    continue
                return s
        return None

    def _bump(
        self,
        request: ReservationRequest,
        occ: int,
        ledger: ReservationLedger,
        bumped: set[str],
        push_booking,
    ) -> Booking | None:
        """Evict one strictly weaker booking to make room, weakest first."""
        earliest, deadline = request.occurrence_interval(occ)
        victims = sorted(
            (
                b
                for b in ledger.overlapping(earliest, deadline)
                if b.priority > request.priority and b.booking_id not in bumped
            ),
            key=lambda b: (-b.priority, b.start),
        )
        for victim in victims:
            ledger.remove(victim.booking_id)
            booking = self.expander.expand(request, occ, ledger)
            if booking is not None:
                ledger.book(booking)
                bumped.add(victim.booking_id)
                push_booking(victim, "bumped")
                return booking
            ledger.book(victim)  # no help — restore and try the next
        return None


class RepairSweep:
    """Seeded mid-run re-decision for the adaptive runner.

    Wraps a full AppLeS agent whose selector is a
    :class:`~repro.core.selector.SeededSelector`: the greedy ladder plus
    the remembered winners' add-one/drop-one neighbourhood, instead of the
    default exhaustive enumeration — the candidate space shrinks from
    ``2^n - 1`` sets to ``O(n + breadth)`` while the acceptance arithmetic
    (keep-vs-move predictions, migration cost) stays exactly the runner's.
    Feed each adopted schedule back via :meth:`observe`.
    """

    def __init__(
        self,
        testbed: Testbed,
        problem: JacobiProblem,
        nws: NetworkWeatherService | None = None,
        userspec: UserSpecification | None = None,
        account_memory: bool = True,
        breadth: int = 3,
        memory: int = 4,
    ) -> None:
        self.selector = SeededSelector(breadth=breadth, memory=memory)
        self.agent = make_jacobi_agent(
            testbed,
            problem,
            nws,
            userspec=userspec,
            selector=self.selector,
            account_memory=account_memory,
        )

    def observe(self, resource_set, stats=None) -> None:
        """Seed the next sweep with an adopted schedule's resource set."""
        self.selector.observe(resource_set, stats)

    def decide(self):
        """One seeded decision; the winner is fed back automatically."""
        decision = self.agent.schedule()
        self.observe(decision.best.resource_set, decision.pruning)
        return decision

"""The reservation ledger: booked allocations on a shared pool timeline.

A :class:`Booking` is one placed occurrence of a
:class:`~repro.reserve.requests.ReservationRequest`: a ``[start, end)``
interval, the machines and grid points of the decided allocation, the
decision's objective, and — the load-bearing part — the frozen
:class:`~repro.arena.instances.ArenaInstance` captured at the decision
instant.  Conflict detection reuses the arena verifier's feasibility
arrays instead of inventing new physics:

- **machine overlap** is exact interval arithmetic: two bookings sharing
  a machine with overlapping ``[start, end)`` intervals conflict (a
  reserved machine is exclusively held, the DSN antenna model);
- **capacity, memory, routability** per booking come from
  :func:`repro.arena.verifier.verify_allocation` over the embedded
  instance — the same shape / work-conservation / memory-capacity /
  zero-rate / unroutable checks every arena allocation faces, scored by
  code that imports no scheduler machinery.

:func:`verify_ledger` is the standalone acceptance check the differential
repair harness runs: every booking verifier-feasible, every pair
machine-disjoint in time, every booking inside its request's window.

Bookings serialise to JSONL like every other frozen artifact in the repo
(one self-describing object per line, ``ValueError`` on malformed input,
bit-identical round-trips).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, replace

from repro.arena.instances import ArenaAllocation, ArenaInstance
from repro.arena.verifier import verify_allocation
from repro.obs.trace import get_tracer
from repro.reserve.requests import ReservationRequest

__all__ = [
    "BOOKING_SCHEMA",
    "Booking",
    "Conflict",
    "ReservationLedger",
    "save_bookings",
    "load_bookings",
    "verify_ledger",
]

BOOKING_SCHEMA = "repro.reserve.booking/v1"


@dataclass(frozen=True)
class Booking:
    """One placed occurrence: a timed allocation plus its frozen evidence.

    ``instance`` holds the pool's forecast state at the decision instant;
    ``objective`` is the decision's risk-adjusted claim, which
    :func:`repro.arena.verifier.verify_allocation` re-derives bit-for-bit
    from the instance alone (the expansion engine refuses to book a
    divergence).  A booking is immutable: repair replaces bookings, it
    never edits them — which is what makes "untouched bookings are
    bit-identical" a checkable property rather than a hope.
    """

    booking_id: str
    request_id: str
    occurrence: int
    priority: int
    start: float
    end: float
    machines: tuple[str, ...]
    points: tuple[float, ...]
    objective: float
    instance: ArenaInstance

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty booking interval [{self.start}, {self.end})")
        if not self.machines or len(self.machines) != len(self.points):
            raise ValueError("machines and points must be non-empty and aligned")
        if len(set(self.machines)) != len(self.machines):
            raise ValueError(f"duplicate machines in booking: {self.machines}")
        if self.occurrence < 0:
            raise ValueError("occurrence must be >= 0")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, start: float, end: float) -> bool:
        """Half-open interval overlap with ``[start, end)``."""
        return self.start < end and start < self.end

    def allocation(self) -> ArenaAllocation:
        """The booking as an arena allocation (for the standalone verifier)."""
        return ArenaAllocation(
            instance_id=self.instance.instance_id,
            policy="reserve",
            machines=self.machines,
            points=self.points,
            claimed_objective=self.objective,
        )

    def shifted(self, start: float) -> "Booking":
        """The same booking moved to ``start`` (duration and arrays kept).

        The shift-within-window repair strategy: the allocation, its
        frozen instance and its duration estimate are untouched — only the
        interval moves, so the verifier verdict is unchanged by
        construction.
        """
        return replace(self, start=start, end=start + self.duration)

    # -- serialisation ------------------------------------------------------
    def to_json_dict(self) -> dict:
        return {
            "schema": BOOKING_SCHEMA,
            "booking_id": self.booking_id,
            "request_id": self.request_id,
            "occurrence": self.occurrence,
            "priority": self.priority,
            "start": self.start,
            "end": self.end,
            "machines": list(self.machines),
            "points": list(self.points),
            "objective": self.objective,
            "instance": self.instance.to_json_dict(),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "Booking":
        if not isinstance(payload, dict):
            raise ValueError("booking record must be a JSON object")
        schema = payload.get("schema")
        if schema != BOOKING_SCHEMA:
            raise ValueError(
                f"unsupported booking schema {schema!r} (want {BOOKING_SCHEMA})"
            )
        try:
            return cls(
                booking_id=str(payload["booking_id"]),
                request_id=str(payload["request_id"]),
                occurrence=int(payload["occurrence"]),
                priority=int(payload["priority"]),
                start=float(payload["start"]),
                end=float(payload["end"]),
                machines=tuple(str(m) for m in payload["machines"]),
                points=tuple(float(p) for p in payload["points"]),
                objective=float(payload["objective"]),
                instance=ArenaInstance.from_json_dict(payload["instance"]),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed booking record: {exc!r}") from exc


@dataclass(frozen=True)
class Conflict:
    """One detected violation on the shared timeline."""

    kind: str  # "machine-overlap" or "infeasible:<reason>"
    booking_ids: tuple[str, ...]
    machines: tuple[str, ...] = ()
    detail: str = ""


class ReservationLedger:
    """Booked allocations over one pool, in submission order.

    The ledger is pure bookkeeping: it holds immutable bookings, answers
    interval queries (``busy_machines``), and detects conflicts exactly.
    It never decides anything — placement and repair live in
    :mod:`repro.reserve.expand` / :mod:`repro.reserve.repair`.

    ``book()`` refuses conflicting bookings unless ``force=True`` — the
    forced path exists so tests and benchmarks can create the conflicted
    worlds repair is then asked to fix.
    """

    def __init__(self, bookings: list[Booking] | None = None) -> None:
        self._bookings: dict[str, Booking] = {}
        self._seq = 0
        for b in bookings or []:
            self.book(b, force=True)

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._bookings)

    def __contains__(self, booking_id: str) -> bool:
        return booking_id in self._bookings

    @property
    def bookings(self) -> tuple[Booking, ...]:
        """All bookings, in insertion order."""
        return tuple(self._bookings.values())

    def get(self, booking_id: str) -> Booking:
        try:
            return self._bookings[booking_id]
        except KeyError:
            raise KeyError(
                f"unknown booking {booking_id!r} (have {sorted(self._bookings)})"
            ) from None

    def next_booking_id(self, request: ReservationRequest, occurrence: int) -> str:
        """A fresh booking identity (sequence-numbered, never reused)."""
        while True:
            self._seq += 1
            candidate = f"{request.request_id}#{occurrence}@{self._seq}"
            if candidate not in self._bookings:
                return candidate

    # -- timeline queries ---------------------------------------------------
    def overlapping(
        self, start: float, end: float, exclude: frozenset[str] | set[str] = frozenset()
    ) -> list[Booking]:
        """Bookings intersecting ``[start, end)`` (minus ``exclude`` ids)."""
        return [
            b
            for b in self._bookings.values()
            if b.booking_id not in exclude and b.overlaps(start, end)
        ]

    def busy_machines(
        self, start: float, end: float, exclude: frozenset[str] | set[str] = frozenset()
    ) -> frozenset[str]:
        """Machines held by any booking intersecting ``[start, end)``."""
        busy: set[str] = set()
        for b in self.overlapping(start, end, exclude):
            busy.update(b.machines)
        return frozenset(busy)

    # -- mutation -----------------------------------------------------------
    def book(self, booking: Booking, force: bool = False) -> Booking:
        """Admit one booking; refuse (``ValueError``) on conflict unless forced."""
        if booking.booking_id in self._bookings:
            raise ValueError(f"duplicate booking id {booking.booking_id!r}")
        if not force:
            clashes = self.conflicts_with(booking)
            if clashes:
                raise ValueError(
                    f"booking {booking.booking_id!r} conflicts: "
                    + "; ".join(c.kind for c in clashes)
                )
        self._bookings[booking.booking_id] = booking
        return booking

    def remove(self, booking_id: str) -> Booking:
        """Drop and return one booking."""
        booking = self.get(booking_id)
        del self._bookings[booking_id]
        return booking

    # -- conflict detection -------------------------------------------------
    def conflicts_with(self, booking: Booking) -> list[Conflict]:
        """Machine-overlap conflicts ``booking`` would have against the ledger."""
        conflicts = []
        for other in self.overlapping(booking.start, booking.end,
                                      exclude={booking.booking_id}):
            shared = tuple(m for m in booking.machines if m in other.machines)
            if shared:
                conflicts.append(
                    Conflict(
                        kind="machine-overlap",
                        booking_ids=(booking.booking_id, other.booking_id),
                        machines=shared,
                        detail=(
                            f"[{booking.start:g}, {booking.end:g}) x "
                            f"[{other.start:g}, {other.end:g})"
                        ),
                    )
                )
        return conflicts

    def conflicts(self) -> list[Conflict]:
        """Every violation in the ledger, exactly.

        Pairwise machine overlaps (each conflicting pair reported once)
        plus per-booking verifier verdicts over the frozen instances —
        capacity, memory, routability per instant, by the arena's
        standalone arithmetic.
        """
        found: list[Conflict] = []
        ordered = list(self._bookings.values())
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                if not a.overlaps(b.start, b.end):
                    continue
                shared = tuple(m for m in a.machines if m in b.machines)
                if shared:
                    found.append(
                        Conflict(
                            kind="machine-overlap",
                            booking_ids=(a.booking_id, b.booking_id),
                            machines=shared,
                            detail=(
                                f"[{a.start:g}, {a.end:g}) x "
                                f"[{b.start:g}, {b.end:g})"
                            ),
                        )
                    )
        for b in ordered:
            report = verify_allocation(b.instance, b.allocation())
            if not report.feasible:
                found.append(
                    Conflict(
                        kind=f"infeasible:{report.reason}",
                        booking_ids=(b.booking_id,),
                        machines=b.machines,
                    )
                )
        tracer = get_tracer()
        if tracer.enabled and found:
            tracer.metrics.counter("reserve.conflict").inc(len(found))
            for c in found:
                tracer.event(
                    "reserve.conflict", layer="reserve",
                    kind=c.kind, bookings=list(c.booking_ids),
                )
        return found


# -- standalone acceptance check --------------------------------------------
def verify_ledger(
    ledger: ReservationLedger,
    requests: dict[str, ReservationRequest] | list | tuple | None = None,
) -> list[str]:
    """Every reason the ledger is not acceptable (empty list = accepted).

    The differential repair harness's referee: feasibility comes from the
    standalone arena verifier over each booking's frozen instance,
    exclusivity from exact interval arithmetic, and — when the original
    requests are supplied (a mapping by id, or any iterable of them) —
    window/deadline/machine-count compliance from the request constraints
    themselves.
    """
    problems = [
        f"{c.kind}: {', '.join(c.booking_ids)}"
        + (f" on {', '.join(c.machines)}" if c.machines else "")
        for c in ledger.conflicts()
    ]
    if requests is not None:
        if not isinstance(requests, dict):
            requests = {r.request_id: r for r in requests}
        for b in ledger.bookings:
            request = requests.get(b.request_id)
            if request is None:
                problems.append(f"unknown-request: {b.booking_id}")
                continue
            earliest, deadline = request.occurrence_interval(b.occurrence)
            if b.start < earliest or b.end > deadline:
                problems.append(
                    f"outside-window: {b.booking_id} "
                    f"[{b.start:g}, {b.end:g}) not in "
                    f"[{earliest:g}, {deadline:g}]"
                )
            if not any(
                start <= b.start < end
                for start, end in request.occurrence_windows(b.occurrence)
            ):
                problems.append(f"outside-preferred-window: {b.booking_id}")
            if len(b.machines) < request.min_machines:
                problems.append(f"below-min-machines: {b.booking_id}")
            if (
                request.max_machines is not None
                and len(b.machines) > request.max_machines
            ):
                problems.append(f"above-max-machines: {b.booking_id}")
    return problems


# -- JSONL persistence ------------------------------------------------------
def save_bookings(path: str | pathlib.Path, ledger: ReservationLedger) -> None:
    """Write the ledger to ``path``, one booking object per line."""
    bookings = ledger.bookings
    if not bookings:
        raise ValueError("refusing to write an empty ledger")
    lines = [json.dumps(b.to_json_dict()) for b in bookings]
    pathlib.Path(path).write_text("\n".join(lines) + "\n")


def load_bookings(path: str | pathlib.Path) -> ReservationLedger:
    """Read a booking JSONL file back into a ledger (``ValueError`` on
    malformed lines; conflicts are preserved, not silently repaired)."""
    records = []
    text = pathlib.Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not a JSON booking record") from exc
        try:
            records.append(Booking.from_json_dict(payload))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
    if not records:
        raise ValueError(f"{path}: no booking records found")
    return ReservationLedger(records)

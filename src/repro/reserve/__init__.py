"""Request-driven reservations over the scheduling service.

The DSN-style layer (Johnston et al.) above :mod:`repro.service`: users
declare :class:`ReservationRequest`\\ s — deadlines, preferred windows,
repetition patterns, machine-count bounds, priority classes — and the
subsystem expands them into timed allocations over the existing decision
machinery, books them on a shared-pool timeline with exact conflict
detection, and *repairs* incrementally instead of re-planning from
scratch.

- :mod:`repro.reserve.requests` — the request schema + JSONL round-trip
  and the seeded rolling-horizon workload generator.
- :mod:`repro.reserve.expand` — request → candidate timed allocations,
  driving ``SchedulingService.decide`` at candidate instants; every
  booking carries a frozen arena instance the standalone verifier
  re-scores bit-for-bit.
- :mod:`repro.reserve.ledger` — bookings on the timeline, machine-overlap
  and verifier-feasibility conflicts, :func:`verify_ledger` acceptance.
- :mod:`repro.reserve.repair` — greedy planning plus the incremental
  repair ladder (shift-within-window, shrink-toward-min, re-expand,
  bump-by-priority) and the adaptive runner's :class:`RepairSweep`.
"""

from repro.reserve.expand import Expander, ExpandStats
from repro.reserve.ledger import (
    BOOKING_SCHEMA,
    Booking,
    Conflict,
    ReservationLedger,
    load_bookings,
    save_bookings,
    verify_ledger,
)
from repro.reserve.repair import (
    STRATEGIES,
    PlanOutcome,
    RepairAction,
    RepairOutcome,
    RepairStats,
    RepairSweep,
    ReservationPlanner,
)
from repro.reserve.requests import (
    REQUEST_SCHEMA,
    ReservationRequest,
    load_requests,
    save_requests,
    seeded_requests,
)

__all__ = [
    "REQUEST_SCHEMA",
    "BOOKING_SCHEMA",
    "STRATEGIES",
    "ReservationRequest",
    "Booking",
    "Conflict",
    "ReservationLedger",
    "Expander",
    "ExpandStats",
    "ReservationPlanner",
    "PlanOutcome",
    "RepairAction",
    "RepairOutcome",
    "RepairStats",
    "RepairSweep",
    "verify_ledger",
    "save_requests",
    "load_requests",
    "save_bookings",
    "load_bookings",
    "seeded_requests",
]

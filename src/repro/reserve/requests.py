"""Reservation requests: the DSN-style ask, strictly richer than a decision.

A :class:`~repro.service.requests.DecisionRequest` asks "what is the best
allocation for me, *right now*".  A :class:`ReservationRequest` asks the
request-driven question of Johnston et al.'s Deep Space Network scheduler:
"give me a feasible timed allocation *somewhere* inside my constraints" —
an earliest start, a deadline, optional preferred windows, a repetition
pattern (``repeat_count`` occurrences, one per ``repeat_period_s``),
minimum/maximum machine counts, and a priority class.  The expansion
engine (:mod:`repro.reserve.expand`) turns each occurrence into candidate
:class:`DecisionRequest`\\ s at concrete instants, so everything below the
reservation layer stays the paper's machinery.

Serialisation follows the :mod:`repro.sim.trace_io` /
:mod:`repro.arena.instances` idiom: deliberately plain JSON, one
self-describing object per line, explicit ``ValueError`` on anything
malformed, and bit-identical round-trips (floats survive via Python's
shortest-repr JSON round-trip).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.core.userspec import UserSpecification
from repro.jacobi.grid import JacobiProblem
from repro.service.requests import DecisionRequest

__all__ = [
    "REQUEST_SCHEMA",
    "ReservationRequest",
    "save_requests",
    "load_requests",
    "seeded_requests",
]

REQUEST_SCHEMA = "repro.reserve.request/v1"

#: Lowest-numbered class is most important (class 1 outranks class 2).
DEFAULT_PRIORITY = 2


@dataclass(frozen=True)
class ReservationRequest:
    """One user's reservation ask over the shared pool timeline.

    Parameters
    ----------
    request_id:
        Caller-chosen identity; bookings and repair reports refer to it.
    problem:
        The Jacobi2D instance to reserve time for (its prediction sets the
        booking's duration).
    earliest_start / deadline:
        The outermost feasible interval of occurrence 0; the booking must
        start at or after ``earliest_start`` and *finish* by ``deadline``.
    preferred_windows:
        Optional ``(start, end)`` sub-windows of the outer interval the
        expansion engine restricts candidate start instants to (empty =
        the whole interval is acceptable).
    repeat_count / repeat_period_s:
        DSN-style repetition: occurrence ``k`` of ``repeat_count`` shifts
        every window by ``k * repeat_period_s``.
    min_machines / max_machines:
        Bounds on the machines a booking may hold.  ``max_machines`` is
        enforced by the User Specification filter inside the decision;
        ``min_machines`` rejects candidate placements that came back too
        small.  ``None`` max means unbounded.
    priority:
        Priority class; **lower numbers outrank higher ones**.  Repair may
        bump a strictly lower-priority booking to place a higher one.
    account_memory:
        Forwarded to the decision (the paper's memory-aware default).
    """

    request_id: str
    problem: JacobiProblem
    earliest_start: float
    deadline: float
    preferred_windows: tuple[tuple[float, float], ...] = ()
    repeat_count: int = 1
    repeat_period_s: float = 0.0
    min_machines: int = 1
    max_machines: int | None = None
    priority: int = DEFAULT_PRIORITY
    account_memory: bool = True

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Structural sanity; every violation is a ``ValueError``."""
        if not self.request_id:
            raise ValueError("request_id must be non-empty")
        if self.earliest_start < 0.0:
            raise ValueError("earliest_start must be >= 0")
        if self.deadline <= self.earliest_start:
            raise ValueError(
                f"deadline {self.deadline} must exceed earliest_start "
                f"{self.earliest_start}"
            )
        for start, end in self.preferred_windows:
            if not (self.earliest_start <= start < end <= self.deadline):
                raise ValueError(
                    f"preferred window ({start}, {end}) outside "
                    f"[{self.earliest_start}, {self.deadline}]"
                )
        if self.repeat_count < 1:
            raise ValueError("repeat_count must be >= 1")
        if self.repeat_count > 1 and self.repeat_period_s <= 0.0:
            raise ValueError("repeat_period_s must be > 0 when repeating")
        if self.min_machines < 1:
            raise ValueError("min_machines must be >= 1")
        if self.max_machines is not None and self.max_machines < self.min_machines:
            raise ValueError(
                f"max_machines {self.max_machines} below min_machines "
                f"{self.min_machines}"
            )
        if self.priority < 1:
            raise ValueError("priority classes start at 1")

    # -- occurrence geometry ------------------------------------------------
    def occurrence_interval(self, occurrence: int) -> tuple[float, float]:
        """Outer ``(earliest, deadline)`` of one occurrence."""
        if not (0 <= occurrence < self.repeat_count):
            raise ValueError(
                f"occurrence {occurrence} outside [0, {self.repeat_count})"
            )
        shift = occurrence * self.repeat_period_s
        return (self.earliest_start + shift, self.deadline + shift)

    def occurrence_windows(self, occurrence: int) -> tuple[tuple[float, float], ...]:
        """Candidate start windows of one occurrence (preferred windows
        shifted by the repetition period; the whole interval when none)."""
        earliest, deadline = self.occurrence_interval(occurrence)
        if not self.preferred_windows:
            return ((earliest, deadline),)
        shift = occurrence * self.repeat_period_s
        return tuple(
            (start + shift, end + shift) for start, end in self.preferred_windows
        )

    # -- bridge to the decision layer ---------------------------------------
    def decision_request(
        self,
        at: float,
        exclude: frozenset[str] | set[str] = frozenset(),
        accessible: frozenset[str] | set[str] | None = None,
        max_machines: int | None = None,
    ) -> DecisionRequest:
        """The concrete :class:`DecisionRequest` for one candidate instant.

        ``exclude`` carries the ledger's busy machines into the User
        Specification filter (so candidate placements are conflict-free by
        construction); ``accessible`` restricts to an explicit subset (the
        shrink-toward-min repair strategy); ``max_machines`` overrides the
        request's own cap (the shrink ladder).
        """
        cap = self.max_machines if max_machines is None else max_machines
        userspec = UserSpecification(
            accessible_machines=(
                None if accessible is None else frozenset(accessible)
            ),
            excluded_machines=frozenset(exclude),
            max_machines=cap,
        )
        return DecisionRequest(
            problem=self.problem,
            userspec=userspec,
            account_memory=self.account_memory,
            at=at,
        )

    # -- serialisation ------------------------------------------------------
    def to_json_dict(self) -> dict:
        p = self.problem
        return {
            "schema": REQUEST_SCHEMA,
            "request_id": self.request_id,
            "problem": {
                "n": p.n,
                "iterations": p.iterations,
                "flop_per_point": p.flop_per_point,
                "bytes_per_point": p.bytes_per_point,
                "border_bytes_per_point": p.border_bytes_per_point,
                "sync_overhead_s": p.sync_overhead_s,
            },
            "earliest_start": self.earliest_start,
            "deadline": self.deadline,
            "preferred_windows": [list(w) for w in self.preferred_windows],
            "repeat_count": self.repeat_count,
            "repeat_period_s": self.repeat_period_s,
            "min_machines": self.min_machines,
            "max_machines": self.max_machines,
            "priority": self.priority,
            "account_memory": self.account_memory,
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "ReservationRequest":
        """Parse and validate one request object (raises ``ValueError``)."""
        if not isinstance(payload, dict):
            raise ValueError("request record must be a JSON object")
        schema = payload.get("schema")
        if schema != REQUEST_SCHEMA:
            raise ValueError(
                f"unsupported request schema {schema!r} (want {REQUEST_SCHEMA})"
            )
        try:
            p = payload["problem"]
            problem = JacobiProblem(
                n=int(p["n"]),
                iterations=int(p["iterations"]),
                flop_per_point=float(p["flop_per_point"]),
                bytes_per_point=float(p["bytes_per_point"]),
                border_bytes_per_point=float(p["border_bytes_per_point"]),
                sync_overhead_s=float(p["sync_overhead_s"]),
            )
            max_machines = payload["max_machines"]
            return cls(
                request_id=str(payload["request_id"]),
                problem=problem,
                earliest_start=float(payload["earliest_start"]),
                deadline=float(payload["deadline"]),
                preferred_windows=tuple(
                    (float(w[0]), float(w[1]))
                    for w in payload["preferred_windows"]
                ),
                repeat_count=int(payload["repeat_count"]),
                repeat_period_s=float(payload["repeat_period_s"]),
                min_machines=int(payload["min_machines"]),
                max_machines=(
                    None if max_machines is None else int(max_machines)
                ),
                priority=int(payload["priority"]),
                account_memory=bool(payload["account_memory"]),
            )
        except (KeyError, TypeError, IndexError) as exc:
            raise ValueError(f"malformed request record: {exc!r}") from exc


# -- JSONL persistence ------------------------------------------------------
def save_requests(
    path: str | pathlib.Path, requests: list[ReservationRequest]
) -> None:
    """Write requests to ``path``, one JSON object per line."""
    if not requests:
        raise ValueError("refusing to write an empty request file")
    lines = [json.dumps(r.to_json_dict()) for r in requests]
    pathlib.Path(path).write_text("\n".join(lines) + "\n")


def load_requests(path: str | pathlib.Path) -> list[ReservationRequest]:
    """Read a request JSONL file back (``ValueError`` on malformed lines)."""
    records = []
    text = pathlib.Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not a JSON request record") from exc
        try:
            records.append(ReservationRequest.from_json_dict(payload))
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
    if not records:
        raise ValueError(f"{path}: no request records found")
    return records


# -- seeded workloads -------------------------------------------------------
def seeded_requests(
    count: int,
    seed: int = 2026,
    base_at: float = 660.0,
    stagger_s: float = 90.0,
    window_s: float = 2400.0,
) -> list[ReservationRequest]:
    """A reproducible rolling-horizon reservation workload.

    Request ``k`` arrives with an earliest start staggered ``stagger_s``
    after its predecessor and a ``window_s``-wide deadline, so consecutive
    requests' feasible intervals overlap heavily — the contention the
    conflict detector and repair engine exist for.  Sizes, priorities,
    machine bounds, preferred windows and repetitions all cycle
    deterministically; the seed only names the requests, so two workloads
    with different seeds never collide in a shared ledger.  Every field is
    a pure function of ``(count, seed, base_at, stagger_s, window_s)``.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    sizes = (400, 500, 600)
    requests = []
    for k in range(count):
        earliest = base_at + k * stagger_s
        deadline = earliest + window_s
        windows: tuple[tuple[float, float], ...] = ()
        if k % 3 == 2:
            # A preferred window in the middle third of the interval.
            span = deadline - earliest
            windows = ((earliest + span / 3.0, earliest + 2.0 * span / 3.0),)
        repeat_count = 2 if k % 5 == 4 else 1
        requests.append(
            ReservationRequest(
                request_id=f"req-s{seed}-{k:03d}",
                problem=JacobiProblem(
                    n=sizes[k % len(sizes)],
                    iterations=20 + 10 * (k % 3),
                ),
                earliest_start=earliest,
                deadline=deadline,
                preferred_windows=windows,
                repeat_count=repeat_count,
                repeat_period_s=window_s if repeat_count > 1 else 0.0,
                min_machines=1 + (k % 2),
                max_machines=(None, 4, 6)[k % 3],
                priority=1 + (k % 3),
                account_memory=True,
            )
        )
    return requests

"""Expansion: turn one reservation occurrence into a booked placement.

Request-driven scheduling's first half (Johnston et al.): *expand* each
request into concrete candidate allocations, then choose.  The expander
samples candidate start instants from the occurrence's windows and drives
the existing decision machinery — :meth:`SchedulingService.decide`, hence
the vectorised one-shot sweep of :mod:`repro.core.sweep` — once per
instant.  The ledger's busy machines over the candidate's horizon enter
the decision as the User Specification's ``excluded_machines``, so every
candidate placement is conflict-free *by construction*; no post-hoc
conflict resolution is needed on the happy path.

Each surviving candidate is frozen on the spot with
:func:`repro.arena.capture_instance` — the pool's forecast state at the
decision instant — and the standalone arena verifier immediately
re-derives the decision's objective from those arrays.  A divergence
raises instead of booking wrong: the booking's evidence is checkable by
code that imports no scheduler machinery, which is what lets repair prove
its results later.

Worlds are pure functions of their seeds (the :mod:`repro.sim.warmcache`
argument), so when a candidate instant precedes the expander's NWS clock
the expander simply rebuilds its world and replays forward — deciding "in
the past" is exact, never approximate.  As a gated fast path the expander
checkpoints (deep-copies) the world at spaced instants and restores the
nearest one instead of rebuilding from scratch: a restored state advanced
to ``t`` is bit-identical to a fresh build advanced straight to ``t`` —
the warm-cache argument again — and ``REPRO_NO_FASTPATH=1`` forces the
rebuild-only reference path.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.arena.instances import ArenaInstance, build_world, capture_instance
from repro.arena.verifier import verify_allocation
from repro.nws.service import NetworkWeatherService
from repro.obs.trace import get_tracer
from repro.reserve.ledger import Booking, ReservationLedger
from repro.reserve.requests import ReservationRequest
from repro.service.core import SchedulingService
from repro.sim.testbeds import Testbed
from repro.util import perf

__all__ = ["ExpandStats", "Expander"]


@dataclass
class ExpandStats:
    """Work counters — the repair-vs-replan currency.

    ``decisions`` counts calls into ``SchedulingService.decide`` (each one
    a full candidate-set sweep); ``rebuilds`` counts world reconstructions
    forced by rewinding the clock.  Repair's whole value proposition is
    that its ``decisions`` stays O(affected bookings) while a re-plan pays
    O(all bookings).
    """

    expansions: int = 0
    decisions: int = 0
    captures: int = 0
    rebuilds: int = 0
    restores: int = 0
    placed: int = 0

    def snapshot(self) -> dict:
        return dict(vars(self))


@dataclass
class _Candidate:
    at: float
    duration: float
    machines: tuple[str, ...]
    points: tuple[float, ...]
    objective: float
    instance: ArenaInstance = field(repr=False)


class Expander:
    """Expand reservation occurrences over one (rebuildable) world.

    Parameters
    ----------
    world:
        An arena-style world spec dict (``generator``/seeds/warmup) —
        rebuilt via :func:`repro.arena.build_world`.  Mutually exclusive
        with ``factory``.
    factory:
        A zero-argument callable returning a fresh ``(testbed, nws)``
        pair (e.g. :meth:`repro.service.daemon.ShardSpec.build`) for
        worlds the arena generators don't describe.  Instances captured
        in factory mode carry an opaque world tag: their frozen arrays
        still verify standalone, they just cannot be re-expanded by a
        third party.
    instants_per_window:
        Candidate start instants sampled per preferred window (evenly
        spaced from the window start).
    label:
        Names captured instances (and the obs span attributes).
    """

    def __init__(
        self,
        world: dict | None = None,
        factory: Callable[[], tuple[Testbed, NetworkWeatherService]] | None = None,
        instants_per_window: int = 3,
        label: str = "reserve",
    ) -> None:
        if (world is None) == (factory is None):
            raise ValueError("pass exactly one of world= or factory=")
        if instants_per_window < 1:
            raise ValueError("instants_per_window must be >= 1")
        self.world = None if world is None else dict(world)
        self._factory = factory
        self.instants_per_window = int(instants_per_window)
        self.label = label
        self.stats = ExpandStats()
        self._testbed: Testbed | None = None
        self._nws: NetworkWeatherService | None = None
        self._service: SchedulingService | None = None
        # World checkpoints are a gated fast path (read once, like every
        # other gate): pristine deep-copies of (testbed, nws) at spaced
        # instants, restored instead of rebuilding on a clock rewind.
        self._use_checkpoints = perf.fastpath_enabled()
        self._checkpoints: list[tuple[float, tuple]] = []

    #: Minimum sim-seconds between stored world checkpoints, and how many
    #: are kept (the horizon coverage of the rewind fast path).
    checkpoint_every = 900.0
    max_checkpoints = 16

    # -- world management ---------------------------------------------------
    @property
    def world_tag(self) -> dict:
        """The world dict stamped into captured instances."""
        if self.world is not None:
            return dict(self.world)
        return {"generator": f"opaque:{self.label}"}

    def _build(self) -> None:
        if self.world is not None:
            self._testbed, self._nws = build_world(self.world)
        else:
            assert self._factory is not None
            self._testbed, self._nws = self._factory()
        self._service = SchedulingService(self._testbed, self._nws, reuse=True)

    def _maybe_checkpoint(self) -> None:
        """Store a pristine copy of the world at its current clock."""
        if not self._use_checkpoints or self._nws is None:
            return
        if len(self._checkpoints) >= self.max_checkpoints:
            return
        now = self._nws.now
        if self._checkpoints and now - self._checkpoints[-1][0] < self.checkpoint_every:
            return
        if self._checkpoints and now <= self._checkpoints[-1][0]:
            return
        self._checkpoints.append(
            (now, copy.deepcopy((self._testbed, self._nws)))
        )

    def _restore(self, at: float) -> bool:
        """Restore the latest checkpoint at or before ``at``; False = none."""
        if not self._use_checkpoints:
            return False
        best = None
        for now, state in self._checkpoints:
            if now <= at:
                best = state
            else:
                break
        if best is None:
            return False
        self._testbed, self._nws = copy.deepcopy(best)
        self._service = SchedulingService(self._testbed, self._nws, reuse=True)
        self.stats.restores += 1
        return True

    def _ensure(self, at: float) -> bool:
        """Make the world able to decide at ``at``; False = unreachable.

        Rewinds restore the nearest stored checkpoint (fast path) or
        rebuild exactly from seeds (reference path) and replay forward; an
        instant before the world's warm-up horizon stays unreachable —
        there is no forecast state there to decide from.
        """
        if self._nws is None:
            self._build()
            self._maybe_checkpoint()
        elif at < self._nws.now:
            self.stats.rebuilds += 1
            if not self._restore(at):
                self._build()
        assert self._nws is not None
        return at >= self._nws.now

    # -- candidate geometry -------------------------------------------------
    def candidate_instants(
        self, request: ReservationRequest, occurrence: int
    ) -> tuple[float, ...]:
        """Evenly spaced start instants across the occurrence's windows."""
        instants: set[float] = set()
        for start, end in request.occurrence_windows(occurrence):
            step = (end - start) / self.instants_per_window
            for j in range(self.instants_per_window):
                instants.add(start + j * step)
        return tuple(sorted(instants))

    # -- expansion ----------------------------------------------------------
    def expand(
        self,
        request: ReservationRequest,
        occurrence: int,
        ledger: ReservationLedger,
        max_machines: int | None = None,
        accessible: frozenset[str] | None = None,
        instants: tuple[float, ...] | None = None,
    ) -> Booking | None:
        """The best feasible placement for one occurrence, or ``None``.

        Candidates are decided in ascending-instant order (the service's
        monotone-NWS contract), each against the ledger's busy machines
        over ``[instant, occurrence deadline]``; the lowest-objective
        survivor wins (ties: earliest start).  ``max_machines`` /
        ``accessible`` / ``instants`` narrow the search for the repair
        strategies (shrink-toward-min restricts to a booking's surviving
        machines at its original instant).

        The returned booking is *not* yet in the ledger — the planner
        books it, so a caller can still reject the whole repair.
        """
        tracer = get_tracer()
        deadline = request.occurrence_interval(occurrence)[1]
        if instants is None:
            instants = self.candidate_instants(request, occurrence)
        self.stats.expansions += 1
        with tracer.span(
            "reserve.expand", layer="reserve",
            t=instants[0] if instants else None,
            request=request.request_id, occurrence=occurrence,
            instants=len(instants), label=self.label,
        ):
            if tracer.enabled:
                tracer.metrics.counter("reserve.expansions").inc()
            candidates = []
            for at in sorted(instants):
                candidate = self._try_instant(
                    request, occurrence, ledger, at, deadline,
                    max_machines, accessible,
                )
                self._maybe_checkpoint()
                if candidate is not None:
                    candidates.append(candidate)
            if not candidates:
                return None
            best = min(candidates, key=lambda c: (c.objective, c.at))
            self.stats.placed += 1
            if tracer.enabled:
                tracer.metrics.counter("reserve.placed").inc()
            return Booking(
                booking_id=ledger.next_booking_id(request, occurrence),
                request_id=request.request_id,
                occurrence=occurrence,
                priority=request.priority,
                start=best.at,
                end=best.at + best.duration,
                machines=best.machines,
                points=best.points,
                objective=best.objective,
                instance=best.instance,
            )

    def _try_instant(
        self,
        request: ReservationRequest,
        occurrence: int,
        ledger: ReservationLedger,
        at: float,
        deadline: float,
        max_machines: int | None,
        accessible: frozenset[str] | None,
    ) -> _Candidate | None:
        if not self._ensure(at):
            return None
        assert self._testbed is not None and self._nws is not None
        busy = ledger.busy_machines(at, deadline)
        hosts = [
            h for h in self._testbed.topology.hosts
            if h not in busy and (accessible is None or h in accessible)
        ]
        if len(hosts) < request.min_machines:
            return None
        dreq = request.decision_request(
            at, exclude=busy, accessible=accessible, max_machines=max_machines
        )
        assert self._service is not None
        self.stats.decisions += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.metrics.counter("reserve.decisions").inc()
        try:
            answer = self._service.decide([dreq])[0]
        except RuntimeError:
            # The selector produced no candidate sets under this filter —
            # a legitimately empty instant, not an error.
            return None
        duration = answer.predicted_time
        if at + duration > deadline:
            return None
        if len(answer.machines) < request.min_machines:
            return None
        instance = self._capture(request, occurrence, at)
        candidate = _Candidate(
            at=at,
            duration=duration,
            machines=tuple(a.machine for a in answer.best.allocations),
            points=tuple(float(a.work_units) for a in answer.best.allocations),
            objective=answer.best_objective,
            instance=instance,
        )
        self._cross_check(request, candidate)
        return candidate

    def _capture(
        self, request: ReservationRequest, occurrence: int, at: float
    ) -> ArenaInstance:
        """Freeze the pool's forecast state at the decision instant."""
        assert self._testbed is not None and self._nws is not None
        self.stats.captures += 1
        instance = capture_instance(
            self._testbed,
            self._nws,
            request.problem,
            self.world_tag,
            instance_id=(
                f"reserve-{self.label}-{request.request_id}"
                f"#{occurrence}@{at:g}"
            ),
            instance_class=f"reserve:{self.label}",
        )
        if not request.account_memory:
            instance = replace(
                instance, params={**instance.params, "account_memory": False}
            )
        return instance

    def _cross_check(self, request: ReservationRequest, c: _Candidate) -> None:
        """The booking's evidence must re-derive its claim, bit for bit.

        With ``account_memory`` off the reference estimator's paging model
        can legitimately diverge from the verifier (which omits paging),
        so the exact-equality check applies to the memory-accounted
        default only; feasibility must hold either way.
        """
        allocation = Booking(
            booking_id="candidate",
            request_id=request.request_id,
            occurrence=0,
            priority=request.priority,
            start=c.at,
            end=c.at + c.duration,
            machines=c.machines,
            points=c.points,
            objective=c.objective,
            instance=c.instance,
        ).allocation()
        report = verify_allocation(c.instance, allocation)
        if not report.feasible:
            raise RuntimeError(
                f"expansion produced an allocation the standalone verifier "
                f"rejects ({report.reason}) for {request.request_id!r}"
            )
        if request.account_memory and report.objective != c.objective:
            raise RuntimeError(
                f"verifier objective {report.objective!r} != decision "
                f"objective {c.objective!r} for {request.request_id!r} — "
                f"the frozen evidence would not support this booking"
            )

"""LRU cache of warmed-up (testbed, NWS) state.

Every experiment driver starts the same way: build a testbed, attach a
Network Weather Service, and simulate a warm-up window so the sensors have
history before the first schedule.  Back-to-back experiments — and the
per-trial tasks of the parallel runner — repeat that identical warm-up
again and again.

Because every load process and sensor stream is a deterministic function of
``(seed, time)``, a warmed service advanced from ``t0`` to ``t1`` is
bit-identical to a fresh one built and advanced straight to ``t1``.  That
makes warmed state safely reusable: this module keeps a small LRU of
``(builder, seed, warmup)``-keyed pairs and hands them out as long as the
requested instant is not in the cached service's past (the NWS cannot
rewind; a rewind request rebuilds from scratch).

Only experiments that never *mutate* their testbed may use the cache;
drivers that inject load (e.g. the multi-application experiment) must keep
building private instances.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.nws.service import NetworkWeatherService
from repro.sim.testbeds import Testbed
from repro.util import perf

__all__ = ["warmed_state", "clear_warm_cache", "warm_cache_stats"]

_MAX_ENTRIES = 8

_cache: "OrderedDict[tuple, tuple[Testbed, NetworkWeatherService]]" = OrderedDict()
_stats = {"hits": 0, "misses": 0}


def warmed_state(
    builder: Callable[..., Testbed],
    seed: int,
    warmup_s: float,
    at: float | None = None,
    nws_seed: int | None = None,
    builder_kwargs: dict | None = None,
) -> tuple[Testbed, NetworkWeatherService]:
    """A testbed plus NWS warmed to ``warmup_s`` and advanced to ``at``.

    Parameters
    ----------
    builder:
        Testbed factory accepting a ``seed`` keyword
        (e.g. :func:`repro.sim.testbeds.sdsc_pcl_testbed`).
    seed:
        Testbed load seed, forwarded to ``builder``.
    warmup_s:
        Sensor warm-up before the first schedule.
    at:
        Simulated instant to advance the NWS to (default ``warmup_s``).
        Must be ``>= warmup_s``.
    nws_seed:
        Measurement-noise seed (default ``seed + 1``, the convention of
        every experiment driver).
    builder_kwargs:
        Extra keyword arguments for ``builder`` (hashable values only;
        they are part of the cache key).

    Results are deterministic regardless of cache hits: a reused service is
    advanced forward, which replays exactly the samples a fresh build would
    take.  Requests behind the cached clock rebuild from scratch.
    """
    if at is None:
        at = warmup_s
    if at < warmup_s:
        raise ValueError(f"at={at} precedes warmup_s={warmup_s}")
    if nws_seed is None:
        nws_seed = seed + 1
    extra = tuple(sorted((builder_kwargs or {}).items()))
    key = (
        getattr(builder, "__module__", ""),
        getattr(builder, "__qualname__", repr(builder)),
        extra,
        int(seed),
        int(nws_seed),
        float(warmup_s),
        perf.fastpath_enabled(),
    )
    entry = _cache.get(key)
    if entry is not None and entry[1].now <= at:
        _stats["hits"] += 1
        _cache.move_to_end(key)
        testbed, nws = entry
    else:
        _stats["misses"] += 1
        testbed = builder(seed=seed, **(builder_kwargs or {}))
        nws = NetworkWeatherService.for_testbed(testbed, seed=nws_seed)
        nws.warmup(warmup_s)
        _cache[key] = (testbed, nws)
        _cache.move_to_end(key)
        while len(_cache) > _MAX_ENTRIES:
            _cache.popitem(last=False)
    if at > nws.now:
        nws.advance_to(at)
    return testbed, nws


def clear_warm_cache() -> None:
    """Drop all cached state (used by benchmarks for cold-start timings)."""
    _cache.clear()


def warm_cache_stats() -> dict[str, int]:
    """Cache effectiveness counters: ``{"hits": ..., "misses": ..., "size": ...}``."""
    return {"hits": _stats["hits"], "misses": _stats["misses"], "size": len(_cache)}

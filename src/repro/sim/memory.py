"""Real-memory and paging model.

Figure 6 of the paper hinges on memory: the HPF/blocked partition runs well
on two SP-2 nodes until the problem spills real memory at 3700×3700, after
which performance collapses; AppLeS instead *locates available memory
elsewhere in the resource pool* and keeps the performance trajectory smooth.

We model each host's memory as ``capacity_mb`` minus an OS reserve.  A
working set that fits runs at full speed; one that spills incurs a paging
slowdown that grows with the spilled fraction — the classic thrashing knee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_nonnegative, check_positive

__all__ = ["MemoryModel"]


@dataclass(frozen=True)
class MemoryModel:
    """Per-host memory model.

    Parameters
    ----------
    capacity_mb:
        Physical memory.
    os_reserved_mb:
        Memory held by the OS and resident daemons; not available to the
        application.
    page_penalty:
        Ratio of page-fault service time to in-core access time, folded into
        a multiplicative compute slowdown.  Values of 20–100 reproduce the
        order-of-magnitude collapse seen in Figure 6.
    """

    capacity_mb: float
    os_reserved_mb: float = 8.0
    page_penalty: float = 40.0

    def __post_init__(self) -> None:
        check_positive("capacity_mb", self.capacity_mb)
        check_nonnegative("os_reserved_mb", self.os_reserved_mb)
        check_positive("page_penalty", self.page_penalty)
        if self.os_reserved_mb >= self.capacity_mb:
            raise ValueError("os_reserved_mb must be smaller than capacity_mb")

    @property
    def available_mb(self) -> float:
        """Memory available to the application."""
        return self.capacity_mb - self.os_reserved_mb

    def fits(self, footprint_mb: float) -> bool:
        """True if the working set fits in available real memory."""
        return check_nonnegative("footprint_mb", footprint_mb) <= self.available_mb

    def slowdown(self, footprint_mb: float) -> float:
        """Multiplicative compute slowdown for the given working set.

        1.0 while the set fits; beyond that, the fraction of accesses that
        fault grows with the spilled fraction ``s = 1 - available/footprint``
        and each fault costs ``page_penalty``:

        ``slowdown = 1 + page_penalty * s``

        This produces the dramatic-but-finite knee the paper describes
        ("spills from memory causing a dramatic reduction in performance").
        """
        f = check_nonnegative("footprint_mb", footprint_mb)
        if f <= self.available_mb:
            return 1.0
        spilled_fraction = 1.0 - self.available_mb / f
        return 1.0 + self.page_penalty * spilled_fraction

"""Ensemble tensor backend: batched struct-of-arrays replica execution.

Monte-Carlo confidence intervals on every figure require executing
*hundreds* of replica simulations — seeds × load regimes × testbeds —
and a Python loop over one :class:`~repro.sim.execution_fast.CompiledExecution`
per replica pays the interpreter tax once per replica per iteration.
This module adds the missing leading **ensemble axis**: a batch of
``(topology, assignments, t0, seed)`` replicas is compiled into shared
NumPy tensors and every barrier step advances *all* replicas at once.

Layout
------
All per-host plans of all vectorisable replicas are flattened into one
*entry* axis (replicas stay contiguous, so per-replica reductions are
``reduceat`` segments):

- ``rates[row, epoch]`` — per-host deliverable-rate tables, copied from
  the read-only exports of :meth:`repro.sim.host.Host.capacity_prefix`;
  each row is materialised lazily to its own doubling horizon, so a
  short-horizon replica never pays for the epochs a long-horizon
  batch-mate walks.  Rows are **shared-world deduplicated**: replicas
  that differ only in assignments (Monte-Carlo sweeps over allocations
  of one world) reference one row per ``(host, footprint)`` instead of
  stacking identical copies — the entry axis maps into the row axis via
  ``_row[entry]``.  Table content is epoch-indexed from absolute time
  zero, so sharing is t0-safe by construction.
- ``pair_bw[pair, epoch]`` — per-pair bottleneck-bandwidth tables
  (:meth:`repro.sim.topology.Topology.pair_bandwidth_table`), deduplicated
  by route content — the resolved ``(link, flow count)`` sequence — so
  identical pairs collapse across replicas of one world, not just within
  a replica; latencies and flow counts resolve at compile time.
- comm *slots* — the ``s``-th communication entry of every host forms one
  vector, so per-peer charges accumulate slot by slot: the float additions
  happen in exactly the reference loop's per-host order while each slot is
  a single vectorised gather.

Bit-identity contract
---------------------
Every replica of an ensemble pass must match the reference loop run solo,
float-for-float (``tests/test_ensemble_equivalence.py``).  The vectorised
step therefore replays the reference arithmetic elementwise:

- The common single-epoch compute exit evaluates the reference's exact
  expression ``(t + work/rate) - t0`` as array ops (IEEE double either
  way).  Multi-epoch integrations run an *epoch-synchronous* vector walk:
  all straddling entries advance one epoch per pass, each replaying the
  reference's subtraction sequence elementwise (the capacity subtracted
  per epoch is the identical ``rate * window`` float, in the identical
  order per entry), with the capacity prefix presizing the shared
  tensors so growth happens at most a few times per run.
- Per-iteration maxima are order-free (max is exact), so segment
  ``reduceat`` reductions are bit-identical to the sequential scan.

Replicas the tensor backend cannot compile — mutable injected loads,
non-tabular routes, heterogeneous per-replica iteration counts —
**surrender individually** to :class:`CompiledExecution`; the rest of the
batch stays vectorised.  The whole backend sits behind the
:mod:`repro.util.perf` gate: ``REPRO_NO_FASTPATH=1`` restores a loop of
:func:`~repro.sim.execution.simulate_iterations_reference` as the
differential oracle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.obs.trace import get_tracer
from repro.sim.execution import (
    IterationResult,
    WorkAssignment,
    count_flows,
    simulate_iterations_reference,
    validate_assignments,
)
from repro.sim.host import _MAX_EPOCHS
from repro.sim.link import Link
from repro.sim.load import epoch_cached
from repro.sim.testbeds import Testbed, synthetic_metacomputer
from repro.sim.topology import Topology
from repro.util import perf
from repro.util.rng import derive_seed
from repro.util.stats import MeanCI, mean_ci
from repro.util.validation import check_positive

__all__ = [
    "ReplicaSpec",
    "EnsembleExecution",
    "run_ensemble",
    "replicated",
    "ring_assignments",
    "ensemble_summary",
]

#: Epochs materialised by the first growth of any shared table row.
_GROW_MIN = 64


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica of an ensemble: a world plus an allocation to execute.

    Parameters
    ----------
    topology:
        The replica's metacomputer (typically built from its own seed).
    assignments:
        One :class:`~repro.sim.execution.WorkAssignment` per host.
    t0:
        Simulated start time of this replica.
    iterations:
        Optional per-replica override of the batch iteration count; a
        replica whose override differs from the batch count surrenders to
        the per-replica executor (the tensor step advances all vectorised
        replicas in lock-step).
    label:
        Free-form tag carried through to reports.
    """

    topology: Topology
    assignments: list[WorkAssignment]
    t0: float = 0.0
    iterations: int | None = None
    label: str = ""


class _CommSlot:
    """The s-th communication entry of every host that has one."""

    __slots__ = ("idx", "nbytes", "latency", "pair", "same_dt")

    def __init__(self, idx, nbytes, latency, pair) -> None:
        self.idx = np.asarray(idx, dtype=np.intp)
        self.nbytes = np.asarray(nbytes, dtype=np.float64)
        self.latency = np.asarray(latency, dtype=np.float64)
        self.pair = np.asarray(pair, dtype=np.intp)
        # Set after the pair dt table exists: True when every pair epoch
        # length matches its entry's host epoch length, letting the
        # executor reuse the compute-side epoch indices directly.
        self.same_dt = False


class EnsembleExecution:
    """A one-time compilation of a *batch* of replicas.

    Construction validates every replica, partitions the batch into
    vectorisable and surrendered replicas, and builds the shared tensors;
    :meth:`run` steps all vectorised replicas at once and the surrendered
    ones through :class:`~repro.sim.execution_fast.CompiledExecution`,
    returning results in input order.
    """

    def __init__(
        self,
        replicas: Sequence[ReplicaSpec],
        iterations: int,
        share_tables: bool = True,
    ) -> None:
        if not replicas:
            raise ValueError("need at least one replica")
        check_positive("iterations", iterations)
        tracer = get_tracer()
        compile_t0 = time.perf_counter() if tracer.enabled else 0.0
        self.iterations = int(iterations)
        self.replicas = list(replicas)
        # Shared-world dedupe: identical rate/pair rows collapse across
        # replicas.  Off builds one row per entry/pair occurrence — kept
        # selectable so the compile-overhead benchmark can measure the
        # delta; results are bit-identical either way (rows are filled
        # from the same read-only prefix exports).
        self.share_tables = bool(share_tables)
        for spec in self.replicas:
            validate_assignments(spec.topology, spec.assignments)

        self._vec: list[int] = []          # replica indices, vectorised
        self._surrendered: list[int] = []  # replica indices, per-replica
        self.surrender_reasons: dict[int, str] = {}
        for r, spec in enumerate(self.replicas):
            reason = self._surrender_reason(spec)
            if reason is None:
                self._vec.append(r)
            else:
                self._surrendered.append(r)
                self.surrender_reasons[r] = reason

        self._compile_vectorised()
        self.compile_report = {
            "replicas": len(self.replicas),
            "vectorised": len(self._vec),
            "surrendered": len(self._surrendered),
            "entries": self._n_entries,
            "rate_rows": self._n_rows,
            "pairs": len(self._pair_links),
            "pair_refs": self._pair_refs,
            "comm_slots": len(self._slots),
        }
        if tracer.enabled:
            wall = time.perf_counter() - compile_t0
            tracer.event(
                "sim.ensemble.compile", layer="sim",
                wall_s=wall, **self.compile_report,
            )
            tracer.metrics.counter("sim.ensemble.compiles").inc()
            tracer.metrics.counter("sim.ensemble.replicas_vectorised").inc(
                len(self._vec)
            )
            tracer.metrics.counter("sim.ensemble.replicas_surrendered").inc(
                len(self._surrendered)
            )
            tracer.metrics.histogram("sim.ensemble.compile_wall_s").observe(wall)

    # -- compilation ---------------------------------------------------------
    def _surrender_reason(self, spec: ReplicaSpec) -> str | None:
        """Why ``spec`` cannot join the tensor pass (None = it can)."""
        if spec.iterations is not None and int(spec.iterations) != self.iterations:
            return "heterogeneous-iterations"
        topology = spec.topology
        for wa in spec.assignments:
            if not epoch_cached(topology.host(wa.host).load):
                return "mutable-host-load"
            for peer, nbytes in wa.comm_bytes.items():
                if nbytes <= 0 or peer == wa.host:
                    continue
                links = topology.route(wa.host, peer)
                if not links:
                    continue
                # The same conditions under which pair_bandwidth_table
                # returns None, checked without building any table.
                if any(not epoch_cached(link.load) for link in links):
                    return "non-tabular-route"
                if len({link.load.dt for link in links}) != 1:
                    return "non-tabular-route"
        return None

    def _compile_vectorised(self) -> None:
        """Flatten vectorised replicas into the shared entry-axis tensors."""
        entry_hosts: list[tuple] = []     # (host, footprint_mb) per entry
        entry_rows: list[int] = []        # entry -> shared rate-table row
        row_index: dict[tuple, int] = {}  # (id(host), footprint) -> row
        row_hosts: list[tuple] = []       # (host, footprint_mb) per row
        work: list[float] = []
        overhead: list[float] = []
        dts: list[float] = []
        seg_starts: list[int] = []
        rep_counts: list[int] = []
        t0s: list[float] = []
        # Pair-table bookkeeping: dedupe by resolved route content (the
        # (link, flow count) sequence), so the same pair of one shared
        # world compiles to one row however many replicas reference it.
        pair_index: dict[tuple, int] = {}
        pair_links: list[list[tuple[Link, int]]] = []
        pair_dts: list[float] = []
        pair_refs = 0  # references before dedupe (the delta's denominator)
        # comm[s] collects the s-th comm entry of every host that has one.
        comm_raw: list[list[tuple[int, float, float, int]]] = []

        for r in self._vec:
            spec = self.replicas[r]
            topology = spec.topology
            flows = count_flows(topology, spec.assignments)
            seg_starts.append(len(entry_hosts))
            rep_counts.append(len(spec.assignments))
            t0s.append(float(spec.t0))
            for wa in spec.assignments:
                host = topology.host(wa.host)
                entry = len(entry_hosts)
                entry_hosts.append((host, wa.footprint_mb))
                # Rate-table row: shared across every entry whose table
                # would be byte-identical — same host object (covers the
                # shared-topology case), same memory footprint.  Epoch
                # tables are absolute-time-indexed, so t0 never enters.
                row_key = (
                    (id(host), float(wa.footprint_mb))
                    if self.share_tables
                    else entry
                )
                row = row_index.get(row_key)
                if row is None:
                    row = len(row_hosts)
                    row_index[row_key] = row
                    row_hosts.append((host, wa.footprint_mb))
                entry_rows.append(row)
                work.append(float(wa.work_mflop))
                overhead.append(float(wa.overhead_s))
                dts.append(float(host.load.dt))
                slot = 0
                for peer, nbytes in wa.comm_bytes.items():
                    if nbytes <= 0 or peer == wa.host:
                        continue
                    if not topology.route(wa.host, peer):
                        continue
                    # Resolve the route and per-link flow counts once;
                    # fills min-reduce the link tables directly instead
                    # of re-walking route/flow lookups per deepening.
                    links = topology.route(wa.host, peer)
                    resolved = [
                        (link, max(1, flows.get(link.name, 1)))
                        for link in links
                    ]
                    pair_refs += 1
                    key = (
                        tuple((id(link), fc) for link, fc in resolved)
                        if self.share_tables
                        else (r, tuple(sorted((wa.host, peer))))
                    )
                    pair = pair_index.get(key)
                    if pair is None:
                        pair = len(pair_links)
                        pair_index[key] = pair
                        pair_links.append(resolved)
                        # dt is uniform along the route (surrender-screened)
                        pair_dts.append(links[0].load.dt)
                    latency = topology.path_latency(wa.host, peer)
                    if slot >= len(comm_raw):
                        comm_raw.append([])
                    comm_raw[slot].append((entry, float(nbytes), latency, pair))
                    slot += 1

        self._entry_hosts = entry_hosts
        self._n_entries = len(entry_hosts)
        self._row_hosts = row_hosts
        self._n_rows = len(row_hosts)
        self._row = np.asarray(entry_rows, dtype=np.intp)
        self._pair_refs = pair_refs
        self._work = np.asarray(work, dtype=np.float64)
        self._overhead = np.asarray(overhead, dtype=np.float64)
        self._dt = np.asarray(dts, dtype=np.float64)
        self._seg_starts = np.asarray(seg_starts, dtype=np.intp)
        self._rep_counts = np.asarray(rep_counts, dtype=np.intp)
        self._t0 = np.asarray(t0s, dtype=np.float64)
        self._pair_links = pair_links
        self._slots = [_CommSlot(*zip(*entries)) for entries in comm_raw]
        # Entry index of each replica's time (t_ent = t[_rep_index]).
        self._rep_index = np.repeat(
            np.arange(len(self._vec), dtype=np.intp), self._rep_counts
        )

        # Shared tensors.  Width (the epoch axis) grows by reallocation
        # only; *generation* is per row: ``_fill[i]`` epochs of row
        # ``i``'s tables are materialised, everything beyond is garbage
        # that is never read.  Rows deepen on their own doubling schedule,
        # so a short-horizon replica never pays for the epochs a
        # long-horizon batch-mate walks — the same generation economics
        # as one table per replica, without giving up the shared axis.
        # Entries address rows through ``_row``; deduped entries share
        # one row's generation work and memory.
        self._epochs = 0
        self._rates = np.zeros((self._n_rows, 0))
        self._fill = np.zeros(self._n_rows, dtype=np.intp)
        self._pair_epochs = 0
        self._pair_bw = np.zeros((len(pair_links), 0))
        self._pair_dt = np.asarray(pair_dts, dtype=np.float64)
        self._pair_fill = np.zeros(len(pair_links), dtype=np.intp)
        for slot in self._slots:
            slot.same_dt = bool(
                np.all(self._pair_dt[slot.pair] == self._dt[slot.idx])
            )

    def _grow_rates(self, n_target: int) -> None:
        """Widen the rate tensor (reallocation only, no generation)."""
        n_new = max(_GROW_MIN, int(n_target), 2 * self._epochs)
        rates = np.empty((self._n_rows, n_new))
        if self._epochs:
            rates[:, : self._epochs] = self._rates
        self._rates = rates
        self._epochs = n_new

    def _fill_rows(self, rows: np.ndarray, needs: np.ndarray) -> None:
        """Deepen rate rows so row ``i`` is materialised past ``needs``.

        ``rows`` are *row* indices (map entries through ``_row`` first;
        duplicates are fine — later occurrences see the updated fill).
        Each row doubles independently (bounded below by the global
        minimum), exactly like a per-replica table would, and each is
        regenerated from the same ``capacity_prefix`` export a private
        table would copy — prefix-stable, so a row deepened for one
        sharer is byte-identical to what any other sharer would build.
        """
        depths = np.maximum(needs, np.maximum(2 * self._fill[rows], _GROW_MIN))
        if int(depths.max()) > self._epochs:
            self._grow_rates(int(depths.max()))
        for i, depth in zip(rows, depths):
            d = int(depth)
            if d <= int(self._fill[i]):
                continue
            host, footprint_mb = self._row_hosts[int(i)]
            self._rates[i, :d] = host.capacity_prefix(d, footprint_mb)[0]
            self._fill[i] = d

    def _fill_pair_rows(self, rows: np.ndarray, needs: np.ndarray) -> None:
        """Deepen pair rows so row ``p`` is materialised past ``needs``.

        Min-reduces the route's per-link bandwidth tables (resolved at
        compile time) — the same stacking
        :meth:`~repro.sim.topology.Topology.pair_bandwidth_table` performs,
        without re-walking routes and flow lookups per deepening.
        """
        depths = np.maximum(needs, np.maximum(2 * self._pair_fill[rows], _GROW_MIN))
        if int(depths.max()) > self._pair_epochs:
            n_new = max(_GROW_MIN, int(depths.max()), 2 * self._pair_epochs)
            bw = np.empty((len(self._pair_links), n_new))
            if self._pair_epochs:
                bw[:, : self._pair_epochs] = self._pair_bw
            self._pair_bw = bw
            self._pair_epochs = n_new
        for p, depth in zip(rows, depths):
            d = int(depth)
            if d <= int(self._pair_fill[p]):
                continue
            tables = [
                link.bandwidth_table(d, fc)
                for link, fc in self._pair_links[int(p)]
            ]
            self._pair_bw[p, :d] = (
                tables[0] if len(tables) == 1 else np.minimum.reduce(tables)
            )
            self._pair_fill[p] = d

    # -- the multi-epoch walk: vectorised reference replay -------------------
    def _multi_epoch_times(
        self,
        compute: np.ndarray,
        multi: np.ndarray,
        k: np.ndarray,
        t_ent: np.ndarray,
        upper: np.ndarray,
    ) -> None:
        """Fill ``compute[multi]`` by replaying the reference walk in bulk.

        Epoch-synchronous form of the reference subtraction sequence: every
        straddling entry advances one epoch per pass, the active set
        shrinking as entries complete.  Each entry sees the identical
        floats in the identical order as the scalar loop — the per-epoch
        capacity ``rate * window`` is an elementwise product either way,
        and a zero-rate epoch subtracts an exact ``0.0`` (a no-op on the
        remaining work, just as the scalar loop's skipped branch is).
        Rows deepen per pass under the doubling schedule of
        :meth:`_fill_rows`, so even a deep walk grows its tables only
        O(log) times.
        """
        km = k[multi]
        # First epoch, unrolled: membership in ``multi`` already proves no
        # entry completes here (the single-epoch exit screened them), so
        # the opening pass needs no completion test and no compression —
        # drain the first window (``upper`` is exactly its capacity) and
        # land every entry on its epoch boundary in straight elementwise
        # ops.
        idx = multi
        t0_m = t_ent[multi]
        dt_m = self._dt[multi]
        t_m = (km + 1) * dt_m
        rem = self._work[multi] - upper[multi]
        k_m = (t_m / dt_m).astype(np.int64)
        np.maximum(k_m, 0, out=k_m)
        for _ in range(_MAX_EPOCHS):
            rows = self._row[idx]
            wlag = np.nonzero(k_m + 2 > self._fill[rows])[0]
            if wlag.size:
                self._fill_rows(rows[wlag], k_m[wlag] + 2)
            rate = self._rates[rows, k_m]
            epoch_end = (k_m + 1) * dt_m
            cap = rate * (epoch_end - t_m)
            fits = (rate > 0.0) & (rem <= cap)
            if fits.any():
                f = np.nonzero(fits)[0]
                compute[idx[f]] = (t_m[f] + rem[f] / rate[f]) - t0_m[f]
                live = np.nonzero(~fits)[0]
                if live.size == 0:
                    return
                idx = idx[live]
                k_m = k_m[live]
                rem = rem[live] - cap[live]
                t_m = epoch_end[live]
                t0_m = t0_m[live]
                dt_m = dt_m[live]
            else:
                rem -= cap
                t_m = epoch_end
            k_m = (t_m / dt_m).astype(np.int64)
            np.maximum(k_m, 0, out=k_m)
        name = self._entry_hosts[int(idx[0])][0].name
        raise RuntimeError(
            f"host {name!r}: work integration exceeded {_MAX_EPOCHS} epochs "
            "(availability pinned near zero?)"
        )

    # -- execution -----------------------------------------------------------
    def run(self) -> list[IterationResult]:
        """Execute the whole batch; one result per replica, input order."""
        tracer = get_tracer()
        results: list[IterationResult | None] = [None] * len(self.replicas)
        if self._vec:
            for r, result in zip(self._vec, self._run_vectorised()):
                results[r] = result
        for r in self._surrendered:
            from repro.sim.execution_fast import CompiledExecution

            spec = self.replicas[r]
            its = self.iterations if spec.iterations is None else spec.iterations
            results[r] = CompiledExecution(
                spec.topology, spec.assignments
            ).run(its, spec.t0)
        if tracer.enabled:
            tracer.metrics.counter("sim.ensemble.runs").inc()
            tracer.metrics.counter("sim.ensemble.replica_iterations").inc(
                self.iterations * len(self.replicas)
            )
        return results  # type: ignore[return-value]

    def _run_vectorised(self) -> list[IterationResult]:
        n = self._n_entries
        work = self._work
        dt = self._dt
        t = self._t0.copy()
        busy = np.zeros(n)
        comm = np.empty(n)
        n_vec = len(self._vec)
        step_maxes = np.empty((self.iterations, n_vec))

        with np.errstate(divide="ignore", invalid="ignore"):
            for it in range(self.iterations):
                if not np.isfinite(t).all():
                    raise RuntimeError(
                        "ensemble time became non-finite "
                        "(a bottleneck delivered zero bandwidth?)"
                    )
                t_ent = t[self._rep_index]
                # -- compute: single-epoch vector exit, bulk walk otherwise.
                # Truncation equals floor for non-negative quotients, and
                # both land on the same clamped 0 for negative ones.
                k = (t_ent / dt).astype(np.int64)
                np.maximum(k, 0, out=k)
                lag = np.nonzero(k + 2 > self._fill[self._row])[0]
                if lag.size:
                    self._fill_rows(self._row[lag], k[lag] + 2)
                rate = self._rates[self._row, k]
                upper = rate * ((k + 1) * dt - t_ent)
                single = (rate > 0.0) & (work <= upper)
                compute = np.where(single, (t_ent + work / rate) - t_ent, 0.0)
                multi = np.nonzero(~single & (work > 0.0))[0]
                if multi.size:
                    self._multi_epoch_times(compute, multi, k, t_ent, upper)
                # -- comm: slot-ordered accumulation over the pair tensors.
                comm.fill(0.0)
                for slot in self._slots:
                    if slot.same_dt:
                        e = k[slot.idx]
                    else:
                        te = t_ent[slot.idx]
                        pdt = self._pair_dt[slot.pair]
                        e = (te / pdt).astype(np.int64)
                        np.maximum(e, 0, out=e)
                    plag = np.nonzero(e + 2 > self._pair_fill[slot.pair])[0]
                    if plag.size:
                        self._fill_pair_rows(slot.pair[plag], e[plag] + 2)
                    bw = self._pair_bw[slot.pair, e]
                    contrib = slot.latency + slot.nbytes / bw
                    if bw.min() > 0.0:
                        # Slot indices are unique (one per host), so the
                        # fancy in-place add accumulates exactly once each.
                        comm[slot.idx] += contrib
                    else:
                        comm[slot.idx] = np.where(
                            bw > 0.0, comm[slot.idx] + contrib, np.inf
                        )
                step = (compute + comm) + self._overhead
                busy += step
                step_max = np.maximum.reduceat(step, self._seg_starts)
                step_maxes[it] = step_max
                t += step_max

        out = []
        for v, r in enumerate(self._vec):
            spec = self.replicas[r]
            lo = int(self._seg_starts[v])
            hi = lo + int(self._rep_counts[v])
            out.append(
                IterationResult(
                    total_time=float(t[v] - self._t0[v]),
                    iteration_times=step_maxes[:, v].tolist(),
                    host_busy_time={
                        wa.host: float(busy[i])
                        for wa, i in zip(spec.assignments, range(lo, hi))
                    },
                )
            )
        return out


def run_ensemble(
    replicas: Sequence[ReplicaSpec], iterations: int
) -> list[IterationResult]:
    """Execute a batch of replicas; one result per replica, input order.

    With fast paths on (:func:`repro.util.perf.fastpath_enabled`, the
    default) the batch is compiled into the struct-of-arrays tensors of
    :class:`EnsembleExecution` and stepped together, with per-replica
    surrender for shapes the tensors cannot hold; ``REPRO_NO_FASTPATH=1``
    restores a loop of
    :func:`~repro.sim.execution.simulate_iterations_reference` as the
    differential oracle.  Every replica's result is bit-identical across
    the three regimes and independent of its batch-mates.
    """
    check_positive("iterations", iterations)
    fast = perf.fastpath_enabled()
    tracer = get_tracer()
    with tracer.span(
        "sim.ensemble.execute", layer="sim",
        replicas=len(replicas), iterations=int(iterations),
        mode="fast" if fast else "reference",
    ):
        if fast:
            return EnsembleExecution(replicas, iterations).run()
        return [
            simulate_iterations_reference(
                spec.topology,
                spec.assignments,
                iterations if spec.iterations is None else spec.iterations,
                spec.t0,
            )
            for spec in replicas
        ]


def ring_assignments(
    testbed: Testbed,
    work_mflop: float = 8.0,
    comm_bytes: float = 100_000.0,
    footprint_mb: float = 8.0,
    overhead_s: float = 0.001,
) -> list[WorkAssignment]:
    """A border-exchange ring over every host — the Jacobi-strip shape."""
    names = testbed.host_names
    n = len(names)
    return [
        WorkAssignment(
            name, work_mflop,
            {
                names[(i + 1) % n]: comm_bytes,
                names[(i - 1) % n]: comm_bytes,
            } if n > 1 else {},
            footprint_mb=footprint_mb,
            overhead_s=overhead_s,
        )
        for i, name in enumerate(names)
    ]


def replicated(
    n_replicas: int,
    n_hosts: int = 8,
    seed: int = 1996,
    regimes: Sequence[float] = (1.0,),
    t0: float = 0.0,
    builder: Callable[..., Testbed] = synthetic_metacomputer,
    make_assignments: Callable[[Testbed], list[WorkAssignment]] | None = None,
    **assignment_kwargs,
) -> list[ReplicaSpec]:
    """Build ``n_replicas`` × ``len(regimes)`` replicas for one ensemble pass.

    Each replica gets its own testbed from ``builder(n_hosts, seed=...)``
    with a seed derived from ``(seed, regime index, replica index)`` —
    the same :func:`~repro.util.rng.derive_seed` spawn-key scheme the
    parallel runner uses, so a replica's world depends only on its own
    coordinates, never on batch composition.  ``regimes`` are load-regime
    work multipliers applied to the default ring allocation (a regime of
    2.0 doubles per-host work and border traffic); pass
    ``make_assignments`` to supply a custom allocation shape instead.
    """
    check_positive("n_replicas", n_replicas)
    if not regimes:
        raise ValueError("need at least one load regime")
    specs = []
    for ri, regime in enumerate(regimes):
        check_positive(f"regimes[{ri}]", regime)
        for i in range(int(n_replicas)):
            testbed = builder(
                n_hosts, seed=derive_seed(seed, "ensemble", ri, i)
            )
            if make_assignments is not None:
                assignments = make_assignments(testbed)
            else:
                kwargs = dict(assignment_kwargs)
                kwargs["work_mflop"] = kwargs.get("work_mflop", 8.0) * regime
                kwargs["comm_bytes"] = kwargs.get("comm_bytes", 100_000.0) * regime
                assignments = ring_assignments(testbed, **kwargs)
            specs.append(
                ReplicaSpec(
                    testbed.topology, assignments, t0=t0,
                    label=f"seed{i}-x{regime:g}",
                )
            )
    return specs


@dataclass(frozen=True)
class _Metric:
    name: str
    extract: Callable[[IterationResult], float] = field(repr=False)


_METRICS = (
    _Metric("total_time", lambda r: r.total_time),
    _Metric("mean_iteration_time", lambda r: r.mean_iteration_time),
    _Metric("efficiency", lambda r: r.efficiency()),
)


def ensemble_summary(
    results: Sequence[IterationResult],
    level: float = 0.95,
    method: str = "normal",
    seed: int = 0,
) -> dict[str, MeanCI]:
    """Mean/CI per metric over an ensemble's results.

    Returns ``{"total_time": MeanCI, "mean_iteration_time": MeanCI,
    "efficiency": MeanCI}`` — the summary rows the experiment tables
    consume.  ``method`` and ``seed`` pass through to
    :func:`repro.util.stats.mean_ci`.
    """
    if not results:
        raise ValueError("ensemble_summary needs at least one result")
    return {
        m.name: mean_ci(
            [m.extract(r) for r in results],
            level=level, method=method, seed=seed,
        )
        for m in _METRICS
    }

"""Canned testbed topologies.

:func:`sdsc_pcl_testbed` reconstructs the Figure 2 system configuration used
for the Jacobi2D experiments: a Sparc-2 and a Sparc-10 on one PCL Ethernet
segment, two RS6000s on another, a gateway to SDSC, and four DEC Alpha
workstations on a non-dedicated FDDI ring.  :func:`sdsc_pcl_with_sp2` adds
the two unloaded SP-2 nodes used in the Figure 6 memory experiment.
:func:`casa_testbed` models the CASA C90↔Paragon pair used by 3D-REACT, and
:func:`nile_testbed` a multi-site NILE configuration.

Nominal speeds are 1996-plausible MFLOP/s figures; what matters for the
reproduction is their *relative* magnitudes and the load processes, which
are chosen so that deliverable performance differs markedly from nominal
performance — the regime in which application-level scheduling pays off.

Unit conventions: megabyte = 10**6 bytes throughout, matching
:mod:`repro.sim.link`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.host import Host
from repro.sim.link import Link, SharedSegment
from repro.sim.load import AR1Load, ConstantLoad, MarkovLoad
from repro.sim.memory import MemoryModel
from repro.sim.topology import Topology
from repro.util.rng import RngStream

__all__ = [
    "Testbed",
    "sdsc_pcl_testbed",
    "sdsc_pcl_with_sp2",
    "casa_testbed",
    "nile_testbed",
    "synthetic_metacomputer",
    "DEFAULT_EPOCH_S",
]

#: Default availability-epoch length (seconds) for testbed load processes.
DEFAULT_EPOCH_S = 5.0


@dataclass
class Testbed:
    """A topology plus bookkeeping the experiments need.

    Attributes
    ----------
    topology:
        The network with all hosts attached.
    name:
        Identifier for reports.
    segments:
        Mapping segment-name → member host names (used for locality-aware
        strip ordering).
    notes:
        Free-form description printed by the benchmark harness.
    """

    topology: Topology
    name: str
    segments: dict[str, list[str]] = field(default_factory=dict)
    notes: str = ""

    @property
    def host_names(self) -> list[str]:
        """All host names, in insertion order."""
        return list(self.topology.hosts)

    def hosts(self) -> list[Host]:
        """All hosts, in insertion order."""
        return list(self.topology.hosts.values())


def _loads(seed: int, dt: float) -> dict[str, object]:
    """The standard non-dedicated load mix for the SDSC/PCL testbed."""
    rng = RngStream(seed, "testbed-load")

    def ar1(name: str, mean: float, sigma: float = 0.07) -> AR1Load:
        return AR1Load(mean=mean, phi=0.9, sigma=sigma, dt=dt, rng=rng.child(name))

    return {
        # PCL workstations: old, heavily shared machines.
        "sparc2": ar1("sparc2", 0.45),
        "sparc10": MarkovLoad(
            idle_level=0.9, busy_level=0.3, p_busy=0.12, p_idle=0.25,
            dt=dt, rng=rng.child("sparc10"),
        ),
        "rs6000a": ar1("rs6000a", 0.30),
        "rs6000b": ar1("rs6000b", 0.70),
        # SDSC alphas: mixed interactive load.
        "alpha1": ar1("alpha1", 0.80, 0.05),
        "alpha2": ar1("alpha2", 0.55),
        "alpha3": MarkovLoad(
            idle_level=0.95, busy_level=0.35, p_busy=0.10, p_idle=0.30,
            dt=dt, rng=rng.child("alpha3"),
        ),
        "alpha4": ar1("alpha4", 0.75, 0.05),
        # Networks.
        "eth-a": ar1("eth-a", 0.60),
        "eth-b": ar1("eth-b", 0.65),
        "fddi": ar1("fddi", 0.85, 0.04),
        "wan": ar1("wan", 0.50, 0.10),
    }


def sdsc_pcl_testbed(seed: int = 1996, dt: float = DEFAULT_EPOCH_S) -> Testbed:
    """The Figure 2 SDSC/PCL testbed.

    Eight non-dedicated hosts: ``sparc2`` and ``sparc10`` on PCL Ethernet
    segment A, ``rs6000a``/``rs6000b`` on segment B, both segments routed
    through ``pcl-gw`` and a WAN link to ``sdsc-gw``, behind which
    ``alpha1``–``alpha4`` sit on a shared FDDI ring.

    Parameters
    ----------
    seed:
        Master seed for every load process in the testbed.
    dt:
        Availability-epoch length in seconds.
    """
    loads = _loads(seed, dt)
    topo = Topology()

    topo.add_host(Host(
        "sparc2", speed_mflops=8.0, memory=MemoryModel(32.0, 6.0),
        load=loads["sparc2"], site="PCL", arch="sparc",
        capabilities=frozenset({"pvm", "kelp"}),
    ))
    topo.add_host(Host(
        "sparc10", speed_mflops=20.0, memory=MemoryModel(64.0, 8.0),
        load=loads["sparc10"], site="PCL", arch="sparc",
        capabilities=frozenset({"pvm", "kelp"}),
    ))
    topo.add_host(Host(
        "rs6000a", speed_mflops=30.0, memory=MemoryModel(128.0, 12.0),
        load=loads["rs6000a"], site="PCL", arch="rs6000",
        capabilities=frozenset({"pvm", "kelp"}),
    ))
    topo.add_host(Host(
        "rs6000b", speed_mflops=30.0, memory=MemoryModel(128.0, 12.0),
        load=loads["rs6000b"], site="PCL", arch="rs6000",
        capabilities=frozenset({"pvm", "kelp"}),
    ))
    for i in range(1, 5):
        topo.add_host(Host(
            f"alpha{i}", speed_mflops=45.0, memory=MemoryModel(128.0, 12.0),
            load=loads[f"alpha{i}"], site="SDSC", arch="alpha",
            capabilities=frozenset({"pvm", "kelp", "corba-orb"}),
        ))

    topo.add_node("pcl-gw")
    topo.add_node("sdsc-gw")

    eth_a = SharedSegment("eth-a", bandwidth_mbit=10.0, latency_s=0.001,
                          load=loads["eth-a"], mac_efficiency=0.8)
    eth_b = SharedSegment("eth-b", bandwidth_mbit=10.0, latency_s=0.001,
                          load=loads["eth-b"], mac_efficiency=0.8)
    fddi = SharedSegment("fddi", bandwidth_mbit=100.0, latency_s=0.0005,
                         load=loads["fddi"], mac_efficiency=0.9)
    wan = Link("wan", bandwidth_mbit=4.0, latency_s=0.004, load=loads["wan"])

    topo.attach_segment(eth_a, ["sparc2", "sparc10", "pcl-gw"])
    topo.attach_segment(eth_b, ["rs6000a", "rs6000b", "pcl-gw"])
    topo.attach_segment(fddi, ["alpha1", "alpha2", "alpha3", "alpha4", "sdsc-gw"])
    topo.connect("pcl-gw", "sdsc-gw", wan)

    return Testbed(
        topology=topo,
        name="sdsc-pcl",
        segments={
            "eth-a": ["sparc2", "sparc10"],
            "eth-b": ["rs6000a", "rs6000b"],
            "fddi": ["alpha1", "alpha2", "alpha3", "alpha4"],
        },
        notes=(
            "Figure 2 configuration: Sparc-2 + Sparc-10 (PCL Ethernet A), "
            "2x RS6000 (PCL Ethernet B), 4x DEC Alpha (SDSC FDDI), "
            "gateway-routed WAN between sites; all non-dedicated."
        ),
    )


def sdsc_pcl_with_sp2(
    seed: int = 1996,
    dt: float = DEFAULT_EPOCH_S,
    sp2_speed_mflops: float = 250.0,
    sp2_memory_mb: float = 128.0,
    crossover_n: int = 3700,
    bytes_per_point: float = 16.0,
) -> Testbed:
    """The Figure 6 configuration: Figure 2 plus two unloaded SP-2 nodes.

    The SP-2 nodes are dedicated (no background load) and joined by a fast
    switch; their OS memory reserve is derived from ``crossover_n`` so that
    a two-node blocked Jacobi partition spills real memory exactly past a
    ``crossover_n`` × ``crossover_n`` problem, as the paper reports for
    3700×3700.

    ``bytes_per_point`` is the Jacobi working-set footprint per grid point
    (two double-precision arrays → 16 bytes).
    """
    tb = sdsc_pcl_testbed(seed=seed, dt=dt)
    topo = tb.topology

    # Memory available per node so that crossover_n^2 points split two ways
    # exactly fills both nodes.
    needed_mb = bytes_per_point * crossover_n * crossover_n / 2 / 1e6
    if needed_mb >= sp2_memory_mb:
        raise ValueError(
            f"crossover_n={crossover_n} needs {needed_mb:.1f} MB/node, which "
            f"exceeds sp2_memory_mb={sp2_memory_mb}"
        )
    reserved = sp2_memory_mb - needed_mb

    for i in (1, 2):
        topo.add_host(Host(
            f"sp2-{i}", speed_mflops=sp2_speed_mflops,
            memory=MemoryModel(sp2_memory_mb, reserved, page_penalty=40.0),
            load=ConstantLoad(1.0, dt=dt), dedicated=True,
            site="SDSC", arch="sp2",
            capabilities=frozenset({"pvm", "kelp", "mpl"}),
        ))

    switch = Link("sp2-switch", bandwidth_mbit=320.0, latency_s=0.00004,
                  load=ConstantLoad(1.0, dt=dt))
    topo.connect("sp2-1", "sp2-2", switch)
    # Each SP-2 node also reaches the SDSC FDDI ring (shared with the alphas).
    fddi = topo.links["fddi"]
    topo.connect("sp2-1", "seg:fddi", Link("sp2-1-fddi", bandwidth_mbit=fddi.bandwidth_mbit,
                                           latency_s=0.0005, load=fddi.load))
    topo.connect("sp2-2", "seg:fddi", Link("sp2-2-fddi", bandwidth_mbit=fddi.bandwidth_mbit,
                                           latency_s=0.0005, load=fddi.load))

    tb.name = "sdsc-pcl+sp2"
    tb.segments["sp2"] = ["sp2-1", "sp2-2"]
    tb.notes += (
        " Plus two dedicated SP-2 nodes on a fast switch; per-node memory "
        f"calibrated so a 2-node blocked partition spills past n={crossover_n}."
    )
    return tb


#: Host-class mix for :func:`synthetic_metacomputer`, cycled in order:
#: (arch, MFLOP/s, memory MB, OS reserve MB, load kind).  The classes echo
#: the real testbeds — old shared Sparcs, mid-range RS6000s, well-kept
#: Alphas, and the occasional dedicated SP-2-class node.
_SYNTH_CLASSES = [
    ("sparc", 10.0, 64.0, 8.0, "markov"),
    ("rs6000", 30.0, 128.0, 12.0, "ar1-mid"),
    ("alpha", 45.0, 128.0, 12.0, "ar1-high"),
    ("sp2", 150.0, 256.0, 16.0, "dedicated"),
]


def synthetic_metacomputer(
    n_hosts: int,
    n_segments: int | None = None,
    seed: int = 1996,
    dt: float = DEFAULT_EPOCH_S,
    wan_bandwidth_mbit: float = 45.0,
    lan_bandwidth_mbit: float = 100.0,
) -> Testbed:
    """A parameterised large testbed for scaling studies.

    Generates ``n_hosts`` hosts in a repeating mix of classes
    (:data:`_SYNTH_CLASSES`), distributed round-robin over ``n_segments``
    shared LAN segments.  Each segment routes through its own gateway and
    a WAN star to a core gateway, so cross-segment traffic contends on
    shared wires exactly like the SDSC/PCL testbed — just wider.  All
    load processes derive from ``seed``, so a testbed is reproducible
    from ``(n_hosts, n_segments, seed, dt)`` alone.

    Parameters
    ----------
    n_hosts:
        Number of hosts to generate.
    n_segments:
        Number of shared LAN segments; defaults to roughly one per eight
        hosts (at least one).
    seed:
        Master seed for every load process.
    dt:
        Availability-epoch length in seconds.
    wan_bandwidth_mbit / lan_bandwidth_mbit:
        Nominal capacities of the gateway WAN links and LAN segments.
    """
    if n_hosts < 1:
        raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
    if n_segments is None:
        n_segments = max(1, n_hosts // 8)
    if not (1 <= n_segments <= n_hosts):
        raise ValueError(
            f"n_segments must be in [1, n_hosts], got {n_segments}"
        )
    rng = RngStream(seed, "synthetic-load")

    def make_load(kind: str, name: str) -> object:
        if kind == "dedicated":
            return ConstantLoad(1.0, dt=dt)
        if kind == "markov":
            return MarkovLoad(
                idle_level=0.9, busy_level=0.3, p_busy=0.12, p_idle=0.25,
                dt=dt, rng=rng.child(name),
            )
        mean = 0.45 if kind == "ar1-mid" else 0.75
        return AR1Load(mean=mean, phi=0.9, sigma=0.07, dt=dt,
                       rng=rng.child(name))

    topo = Topology()
    members: list[list[str]] = [[] for _ in range(n_segments)]
    for i in range(n_hosts):
        arch, speed, mem_mb, reserve_mb, kind = _SYNTH_CLASSES[
            i % len(_SYNTH_CLASSES)
        ]
        seg = i % n_segments
        name = f"{arch}{i}"
        topo.add_host(Host(
            name, speed_mflops=speed,
            memory=MemoryModel(mem_mb, reserve_mb),
            load=make_load(kind, name),
            dedicated=kind == "dedicated",
            site=f"seg{seg}", arch=arch,
            capabilities=frozenset({"pvm", "kelp"}),
        ))
        members[seg].append(name)

    topo.add_node("core-gw")
    segments: dict[str, list[str]] = {}
    for seg, seg_members in enumerate(members):
        lan_name = f"lan{seg}"
        gw = f"seg{seg}-gw"
        topo.add_node(gw)
        lan = SharedSegment(
            lan_name, bandwidth_mbit=lan_bandwidth_mbit, latency_s=0.0005,
            load=AR1Load(mean=0.8, phi=0.9, sigma=0.05, dt=dt,
                         rng=rng.child(lan_name)),
            mac_efficiency=0.9,
        )
        topo.attach_segment(lan, seg_members + [gw])
        wan = Link(
            f"wan{seg}", bandwidth_mbit=wan_bandwidth_mbit, latency_s=0.005,
            load=AR1Load(mean=0.55, phi=0.9, sigma=0.08, dt=dt,
                         rng=rng.child(f"wan{seg}")),
        )
        topo.connect(gw, "core-gw", wan)
        segments[lan_name] = list(seg_members)

    return Testbed(
        topology=topo,
        name=f"synthetic-{n_hosts}x{n_segments}",
        segments=segments,
        notes=(
            f"Synthetic metacomputer: {n_hosts} hosts in a "
            f"{len(_SYNTH_CLASSES)}-class mix over {n_segments} shared LAN "
            "segment(s), gateway-routed through a WAN star."
        ),
    )


def casa_testbed(
    seed: int = 1996, dt: float = 60.0, dedicated: bool = True
) -> Testbed:
    """The CASA gigabit-testbed pair used by 3D-REACT.

    A Cray C90 CPU at SDSC and a 64-node Intel Paragon partition at CalTech,
    joined by a HiPPI-SONET link.  With ``dedicated=True`` (the default,
    matching the paper: "3D-REACT required completely dedicated access ...
    in order to avoid contention effects") both ends and the link are
    uncontended.  ``dedicated=False`` models the environment the 3D-REACT
    AppLeS of §4.2 was designed for: a space-shared Paragon whose partition
    availability varies and a shared wide-area link — the regime where the
    agent must consult NWS forecasts instead of assuming full machines.

    Speeds are *aggregate effective* rates for this application; the
    per-task vector/parallel efficiency asymmetry lives in
    :mod:`repro.react.tasks`, not here.
    """
    rng = RngStream(seed, "casa-load")
    if dedicated:
        c90_load: object = ConstantLoad(1.0, dt=dt)
        paragon_load: object = ConstantLoad(1.0, dt=dt)
        hippi_load: object = ConstantLoad(1.0, dt=dt)
    else:
        # The C90 CPU is still a dedicated queue slot; the Paragon
        # partition and the WAN are shared.
        c90_load = ConstantLoad(1.0, dt=dt)
        paragon_load = AR1Load(mean=0.55, phi=0.92, sigma=0.08, dt=dt,
                               rng=rng.child("paragon"))
        hippi_load = AR1Load(mean=0.6, phi=0.9, sigma=0.1, dt=dt,
                             rng=rng.child("hippi"))
    topo = Topology()
    topo.add_host(Host(
        "c90", speed_mflops=1000.0, memory=MemoryModel(2048.0, 64.0),
        load=c90_load, dedicated=True, site="SDSC", arch="c90",
        capabilities=frozenset({"vector"}),
    ))
    topo.add_host(Host(
        "paragon", speed_mflops=3200.0, memory=MemoryModel(4096.0, 128.0),
        load=paragon_load, dedicated=dedicated, site="CalTech", arch="paragon",
        capabilities=frozenset({"parallel"}),
    ))
    hippi = Link("hippi-sonet", bandwidth_mbit=800.0, latency_s=0.01,
                 load=hippi_load)
    topo.connect("c90", "paragon", hippi)
    return Testbed(
        topology=topo,
        name="casa" if dedicated else "casa-contended",
        segments={"hippi": ["c90", "paragon"]},
        notes="CASA gigabit testbed: SDSC C90 and CalTech Paragon over HiPPI-SONET."
        + ("" if dedicated else " Non-dedicated Paragon partition and shared link."),
    )


def nile_testbed(seed: int = 1996, dt: float = 30.0, nsites: int = 3) -> Testbed:
    """A NILE-style multi-site configuration.

    Each site has a small DEC Alpha farm (dedicated) and a couple of shared
    workstations; sites are joined by WAN links of differing quality (the
    paper lists ATM, FDDI and Ethernet interconnects).
    """
    if nsites < 1:
        raise ValueError("nsites must be >= 1")
    rng = RngStream(seed, "nile-load")
    topo = Topology()
    segments: dict[str, list[str]] = {}
    site_gws: list[str] = []
    for s in range(nsites):
        site = f"site{s}"
        gw = f"{site}-gw"
        topo.add_node(gw)
        site_gws.append(gw)
        members = [gw]
        for i in range(2):
            name = f"{site}-alpha{i}"
            topo.add_host(Host(
                name, speed_mflops=50.0, memory=MemoryModel(256.0, 16.0),
                load=ConstantLoad(1.0, dt=dt), dedicated=True, site=site,
                arch="alpha", capabilities=frozenset({"corba-orb"}),
            ))
            members.append(name)
        for i in range(2):
            name = f"{site}-ws{i}"
            topo.add_host(Host(
                name, speed_mflops=25.0, memory=MemoryModel(96.0, 12.0),
                load=AR1Load(mean=0.6, phi=0.9, sigma=0.08, dt=dt,
                             rng=rng.child(name)),
                site=site, arch="alpha", capabilities=frozenset({"corba-orb"}),
            ))
            members.append(name)
        lan = SharedSegment(f"{site}-lan", bandwidth_mbit=100.0, latency_s=0.0005,
                            load=AR1Load(mean=0.85, phi=0.9, sigma=0.04, dt=dt,
                                         rng=rng.child(f"{site}-lan")),
                            mac_efficiency=0.9)
        topo.attach_segment(lan, members)
        segments[f"{site}-lan"] = members[1:]
    # Chain the sites with WANs of decreasing quality (ATM, then slower).
    for s in range(nsites - 1):
        bw = [155.0, 45.0, 10.0][min(s, 2)]
        wan = Link(f"wan{s}", bandwidth_mbit=bw, latency_s=0.01 * (s + 1),
                   load=AR1Load(mean=0.6, phi=0.9, sigma=0.08, dt=dt,
                                rng=rng.child(f"wan{s}")))
        topo.connect(site_gws[s], site_gws[s + 1], wan)
    return Testbed(
        topology=topo,
        name="nile",
        segments=segments,
        notes=f"NILE-style configuration: {nsites} sites, Alpha farms + shared workstations.",
    )

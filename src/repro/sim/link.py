"""Network links and shared segments.

The Figure 2 testbed mixes three kinds of interconnect:

- shared 10 Mbit/s Ethernet segments inside the PCL (Suns on one segment,
  RS6000s on another),
- a non-dedicated 100 Mbit/s FDDI ring at SDSC,
- a routed gateway between the PCL and SDSC.

A :class:`Link` is a point-to-point pipe; a :class:`SharedSegment` is a
broadcast medium whose bandwidth is divided among concurrent flows.  Both
carry an availability process modelling competing traffic, mirroring how
the NWS measured *deliverable* bandwidth rather than nominal capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.load import ConstantLoad, LoadProcess
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["Link", "SharedSegment", "MBIT", "MBYTE"]

#: Bytes per megabit — link speeds are quoted in Mbit/s, transfers in bytes.
MBIT = 1_000_000 / 8
#: Bytes per megabyte (decimal, matching bandwidth conventions).
MBYTE = 1_000_000


@dataclass
class Link:
    """A point-to-point network link.

    Parameters
    ----------
    name:
        Unique identifier.
    bandwidth_mbit:
        Nominal bandwidth in Mbit/s.
    latency_s:
        One-way message latency in seconds.
    load:
        Availability process for competing traffic (1.0 = dedicated).
    """

    name: str
    bandwidth_mbit: float
    latency_s: float = 0.001
    load: LoadProcess = field(default_factory=ConstantLoad)

    def __post_init__(self) -> None:
        check_positive("bandwidth_mbit", self.bandwidth_mbit)
        check_nonnegative("latency_s", self.latency_s)
        if not self.name:
            raise ValueError("link name must be non-empty")
        # Grown per-flow bandwidth-table exports (valid only for
        # epoch-cached loads, which are append-only).
        self._bw_tables: dict[int, np.ndarray] = {}

    def deliverable_bandwidth(self, t: float, flows: int = 1) -> float:
        """Deliverable bytes/s at time ``t`` for one of ``flows`` concurrent flows."""
        if flows < 1:
            raise ValueError(f"flows must be >= 1, got {flows}")
        return self.bandwidth_mbit * MBIT * self.load.availability(t) / flows

    def transfer_time(self, nbytes: float, t: float = 0.0, flows: int = 1) -> float:
        """Seconds to move ``nbytes`` across this link at time ``t``.

        Latency is charged once per transfer (the applications in this
        reproduction exchange few large messages per step, so per-packet
        latency is folded into the bandwidth term).
        """
        nbytes = check_nonnegative("nbytes", nbytes)
        bw = self.deliverable_bandwidth(t, flows)
        if bw <= 0.0:
            return float("inf")
        return self.latency_s + nbytes / bw

    def bandwidth_table(self, n: int, flows: int = 1) -> np.ndarray:
        """Per-epoch deliverable bytes/s for epochs ``[0, n)``.

        Array-export hook for the vectorised executor: element ``k`` is
        exactly :meth:`deliverable_bandwidth` at any instant inside epoch
        ``k`` — the scalar expression applied elementwise in the same
        operation order, so tables are bit-identical to live queries.
        Only valid for :func:`~repro.sim.load.epoch_cached` loads.

        Returns a **read-only view** of a per-flow export buffer grown
        geometrically: repeated deepening pays the elementwise product
        once per doubling.  The longer table is the same elementwise
        expression, hence bit-identical on its prefix.
        """
        if flows < 1:
            raise ValueError(f"flows must be >= 1, got {flows}")
        cached = self._bw_tables.get(flows)
        if cached is None or cached.shape[0] < n:
            n_new = max(n, 2 * cached.shape[0]) if cached is not None else n
            table = (
                self.bandwidth_mbit * MBIT * self.load.availability_array(n_new) / flows
            )
            table.setflags(write=False)
            cached = table
            self._bw_tables[flows] = cached
        return cached[:n]

    @property
    def is_shared(self) -> bool:
        """Point-to-point links are not broadcast media."""
        return False


@dataclass
class SharedSegment(Link):
    """A broadcast medium (Ethernet segment, FDDI ring).

    All attached hosts contend for the same wire, so the per-flow bandwidth
    shrinks with the number of simultaneous transfers *on the segment*, not
    just on one path.  ``mac_efficiency`` models protocol overhead (CSMA/CD
    back-off on Ethernet ≈ 0.7–0.9 of nominal; token-passing FDDI ≈ 0.9+).
    """

    mac_efficiency: float = 0.85

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 < self.mac_efficiency <= 1.0):
            raise ValueError(
                f"mac_efficiency must be in (0, 1], got {self.mac_efficiency}"
            )

    def deliverable_bandwidth(self, t: float, flows: int = 1) -> float:
        """Per-flow deliverable bytes/s including MAC overhead."""
        base = super().deliverable_bandwidth(t, flows)
        return base * self.mac_efficiency

    def bandwidth_table(self, n: int, flows: int = 1) -> np.ndarray:
        """Per-epoch per-flow deliverable bytes/s including MAC overhead."""
        return super().bandwidth_table(n, flows) * self.mac_efficiency

    @property
    def is_shared(self) -> bool:
        return True

"""Simulated hosts.

A host couples a nominal compute rate with an availability process and a
memory model.  The central method is :meth:`Host.time_to_compute`, which
integrates work through the piecewise-constant availability trace — so a
long computation that straddles a load spike really pays for it, exactly
the effect that punishes schedules built from stale or nominal information.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.load import ConstantLoad, LoadProcess
from repro.sim.memory import MemoryModel
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["Host"]

# Safety valve for the work integrator: more epochs than this in a single
# computation means the parameters are pathological.
_MAX_EPOCHS = 5_000_000


@dataclass
class Host:
    """A machine in the metacomputer.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"alpha1"``.
    speed_mflops:
        Nominal (unloaded, in-core) compute rate in MFLOP/s.
    memory:
        Real-memory model for this host.
    load:
        Availability process; defaults to a dedicated host.
    dedicated:
        Informational flag — dedicated hosts conventionally carry a
        :class:`~repro.sim.load.ConstantLoad` at 1.0.
    site:
        Label of the administrative site the host belongs to (e.g. ``"PCL"``
        or ``"SDSC"``); used for locality grouping.
    arch:
        Architecture tag (``"sparc"``, ``"rs6000"``, ``"alpha"``, ``"sp2"``,
        ``"c90"``, ``"paragon"``); used by User Specifications filters and
        per-architecture task implementations.
    capabilities:
        Arbitrary capability strings (e.g. ``"corba-orb"``, ``"kelp"``)
        matched against User Specifications requirements (§3.5).
    """

    name: str
    speed_mflops: float
    memory: MemoryModel = field(default_factory=lambda: MemoryModel(128.0))
    load: LoadProcess = field(default_factory=ConstantLoad)
    dedicated: bool = False
    site: str = ""
    arch: str = ""
    capabilities: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        check_positive("speed_mflops", self.speed_mflops)
        if not self.name:
            raise ValueError("host name must be non-empty")
        self.capabilities = frozenset(self.capabilities)
        # Grown rate/prefix table exports, keyed by footprint (valid only
        # for epoch-cached loads, which are append-only — see
        # :meth:`capacity_prefix`).
        self._tables: dict[float, tuple[np.ndarray, np.ndarray]] = {}

    # -- instantaneous quantities -----------------------------------------
    def availability(self, t: float) -> float:
        """Deliverable CPU fraction at time ``t``."""
        return self.load.availability(t)

    def effective_speed(self, t: float, footprint_mb: float = 0.0) -> float:
        """Deliverable MFLOP/s at time ``t`` for a given working set.

        Availability scales the nominal rate down; a spilled working set
        divides it further by the paging slowdown.
        """
        check_nonnegative("footprint_mb", footprint_mb)
        rate = self.speed_mflops * self.load.availability(t)
        return rate / self.memory.slowdown(footprint_mb)

    def seconds_per_mflop(self, t: float, footprint_mb: float = 0.0) -> float:
        """Reciprocal rate at time ``t`` (inf if the host delivers nothing)."""
        rate = self.effective_speed(t, footprint_mb)
        return float("inf") if rate <= 0.0 else 1.0 / rate

    # -- work integration ---------------------------------------------------
    def time_to_compute(
        self, work_mflop: float, t0: float = 0.0, footprint_mb: float = 0.0
    ) -> float:
        """Seconds to complete ``work_mflop`` starting at ``t0``.

        Integrates through the availability epochs: within an epoch the rate
        is constant, so the work drains linearly; the remainder carries into
        the next epoch.  Raises ``RuntimeError`` if availability stays at
        zero long enough to exceed the epoch safety valve.
        """
        work = check_nonnegative("work_mflop", work_mflop)
        if work == 0.0:
            return 0.0
        slowdown = self.memory.slowdown(check_nonnegative("footprint_mb", footprint_mb))
        dt = self.load.dt
        t = float(t0)
        remaining = work
        for _ in range(_MAX_EPOCHS):
            rate = self.speed_mflops * self.load.availability(t) / slowdown
            epoch_end = (self.load.epoch_of(t) + 1) * dt
            window = epoch_end - t
            if rate > 0.0 and remaining <= rate * window:
                return (t + remaining / rate) - t0
            if rate > 0.0:
                remaining -= rate * window
            t = epoch_end
        raise RuntimeError(
            f"host {self.name!r}: work integration exceeded {_MAX_EPOCHS} epochs "
            "(availability pinned near zero?)"
        )

    def rate_table(self, n: int, footprint_mb: float = 0.0) -> np.ndarray:
        """Per-epoch deliverable MFLOP/s for epochs ``[0, n)``.

        Array-export hook for the vectorised executor: element ``k`` is
        exactly the ``rate`` the :meth:`time_to_compute` loop computes
        inside epoch ``k`` — the same operations
        (``speed * availability / slowdown``, in that order) applied
        elementwise, so the table is bit-identical to scalar queries.
        Only valid for :func:`~repro.sim.load.epoch_cached` loads.
        """
        slowdown = self.memory.slowdown(
            check_nonnegative("footprint_mb", footprint_mb)
        )
        return (self.speed_mflops * self.load.availability_array(n)) / slowdown

    def capacity_prefix(
        self, n: int, footprint_mb: float = 0.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Rate table plus cumulative-capacity prefix for epochs ``[0, n)``.

        Array-export hook shared by the vectorised executors: the first
        array is :meth:`rate_table`; the second is the running sum of
        ``rate * dt`` — the MFLOP deliverable through the *end* of each
        epoch.  A work integration inverts the prefix with a searchsorted
        to bracket its completion epoch in one step.  The prefix only ever
        *brackets* (the exact answer comes from replaying the reference
        subtraction sequence), so its summation order is uncritical.

        Returns **read-only views** of per-footprint export buffers grown
        geometrically, so executors that repeatedly deepen their tables
        pay the elementwise rate computation once per doubling, not per
        query.  Epoch-cached loads are append-only, which keeps old views
        valid; rates computed at a larger ``n`` are the same elementwise
        expression, hence bit-identical prefixes of the longer table.
        """
        cached = self._tables.get(footprint_mb)
        if cached is None or cached[0].shape[0] < n:
            n_new = max(n, 2 * cached[0].shape[0]) if cached else n
            rates = self.rate_table(n_new, footprint_mb)
            prefix = np.cumsum(rates * self.load.dt)
            rates.setflags(write=False)
            prefix.setflags(write=False)
            cached = (rates, prefix)
            self._tables[footprint_mb] = cached
        return cached[0][:n], cached[1][:n]

    def mean_effective_speed(self, t0: float, t1: float, footprint_mb: float = 0.0) -> float:
        """Average deliverable MFLOP/s over ``[t0, t1]``."""
        avail = self.load.mean_availability(t0, t1)
        return self.speed_mflops * avail / self.memory.slowdown(footprint_mb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Host({self.name!r}, {self.speed_mflops:g} MFLOP/s, "
            f"{self.memory.capacity_mb:g} MB, site={self.site!r})"
        )

"""Background-load (availability) processes.

The paper's testbed machines were *non-dedicated*: other users' work made
their deliverable CPU and network capacity vary over time (§3.2).  We model
this as an **availability process**: a function of simulated time returning
the fraction of a resource's nominal capacity deliverable to the scheduled
application, piecewise-constant over fixed *epochs*.

Availability is the quantity the real Network Weather Service measured and
forecast, so modelling it directly keeps the measurement→forecast→schedule
pipeline faithful.

All processes are driven by :class:`repro.util.rng.RngStream`, making every
trace reproducible, and are *lazy*: epoch values are generated on first
access and cached, so two queries of the same instant agree.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.util import perf
from repro.util.rng import RngStream
from repro.util.validation import check_fraction, check_positive

__all__ = [
    "LoadProcess",
    "ConstantLoad",
    "AR1Load",
    "MarkovLoad",
    "SpikeLoad",
    "CompositeLoad",
    "TraceLoad",
    "epoch_cached",
]


def epoch_cached(load: "LoadProcess") -> bool:
    """True if ``load``'s availability is served from the frozen epoch cache.

    Cached processes are deterministic functions of the epoch index, so
    their values can be materialised in bulk once and indexed forever
    (:meth:`LoadProcess.availability_array`).  Mutable processes —
    :class:`IntervalLoad`, :class:`DynamicCompositeLoad`, or any subclass
    that overrides :meth:`LoadProcess.availability` — must be queried live
    at the exact instants the reference code would query them.
    """
    return type(load).availability is LoadProcess.availability


class LoadProcess:
    """Base class: piecewise-constant availability over epochs of ``dt`` seconds.

    Subclasses implement :meth:`_generate` which produces the availability
    for epoch ``k`` given epoch ``k-1`` (Markovian structure).  Values are
    cached so the process is a deterministic function of time.
    """

    def __init__(self, dt: float = 10.0) -> None:
        self.dt = check_positive("dt", dt)
        self._cache: list[float] = []
        self._export = np.empty(0)
        self._bulk = perf.fastpath_enabled()

    # -- subclass interface ------------------------------------------------
    def _generate(self, k: int, prev: float | None) -> float:
        """Availability for epoch ``k`` (``prev`` is epoch ``k-1`` or None)."""
        raise NotImplementedError

    def _generate_many(self, k0: int, count: int, prev: float | None) -> list[float]:
        """Availability for epochs ``k0 .. k0+count-1`` in one pass.

        The default chains :meth:`_generate`; stochastic subclasses override
        it to draw their random numbers in one batched call (bit-identical
        to the sequential draws, since the generators consume the stream in
        the same order).
        """
        values = []
        for i in range(count):
            prev = self._generate(k0 + i, prev)
            values.append(prev)
        return values

    # -- public API ----------------------------------------------------------
    def epoch_of(self, t: float) -> int:
        """Index of the epoch containing time ``t`` (t<0 clamps to 0)."""
        return max(0, int(math.floor(t / self.dt)))

    def availability(self, t: float) -> float:
        """Deliverable fraction of nominal capacity at time ``t``, in [0, 1]."""
        k = self.epoch_of(t)
        self._fill_to(k)
        return self._cache[k]

    def mean_availability(self, t0: float, t1: float) -> float:
        """Time-average availability over ``[t0, t1]``.

        Exact for the piecewise-constant model (weighted by overlap).
        """
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if t1 == t0:
            return self.availability(t0)
        k0, k1 = self.epoch_of(t0), self.epoch_of(t1)
        self._fill_to(k1)
        total = 0.0
        for k in range(k0, k1 + 1):
            lo = max(t0, k * self.dt)
            hi = min(t1, (k + 1) * self.dt)
            if hi > lo:
                total += self._cache[k] * (hi - lo)
        return total / (t1 - t0)

    def sample(self, n: int, t0: float = 0.0) -> list[float]:
        """The availability of ``n`` consecutive epochs starting at ``t0``."""
        k0 = self.epoch_of(t0)
        self._fill_to(k0 + n - 1)
        return self._cache[k0 : k0 + n]

    def availability_array(self, n: int) -> np.ndarray:
        """Bulk-materialise epochs ``[0, n)`` as a float64 array.

        This is the array-export hook the vectorised executor compiles its
        capacity and bandwidth tables from.  The values come from the same
        epoch cache :meth:`availability` serves, so a bulk materialisation
        and a sequence of scalar queries see bit-identical numbers.  Only
        meaningful for :func:`epoch_cached` processes — mutable processes
        do not use the cache and raise from their ``_generate``.

        Returns a **read-only view** of a persistent export buffer, so a
        grown executor re-reading a table it already exported pays no
        list-to-array conversion.  Epoch values are append-only, which is
        what keeps old views valid.
        """
        check_positive("n", n)
        if self._export.shape[0] < n:
            self._fill_to(n - 1)
            arr = np.asarray(self._cache, dtype=np.float64)
            arr.setflags(write=False)
            self._export = arr
        return self._export[:n]

    def _fill_to(self, k: int) -> None:
        cache = self._cache
        missing = k + 1 - len(cache)
        if missing <= 0:
            return
        if self._bulk and missing > 1:
            prev = cache[-1] if cache else None
            values = self._generate_many(len(cache), missing, prev)
            arr = np.asarray(values, dtype=np.float64)
            if not np.all((arr >= 0.0) & (arr <= 1.0)):
                for value in values:  # re-check scalar-wise for the message
                    check_fraction("availability", value)
            cache.extend(arr.tolist())
            return
        while len(cache) <= k:
            prev = cache[-1] if cache else None
            value = check_fraction("availability", self._generate(len(cache), prev))
            cache.append(value)


class ConstantLoad(LoadProcess):
    """Fixed availability — models a dedicated resource (``level=1``) or a
    statically shared one."""

    def __init__(self, level: float = 1.0, dt: float = 10.0) -> None:
        super().__init__(dt)
        self.level = check_fraction("level", level)

    def _generate(self, k: int, prev: float | None) -> float:
        return self.level

    def _generate_many(self, k0: int, count: int, prev: float | None) -> list[float]:
        return [self.level] * count


class AR1Load(LoadProcess):
    """First-order autoregressive availability.

    ``a_k = mean + phi * (a_{k-1} - mean) + noise`` clipped to ``[floor, 1]``.
    AR(1) is the canonical model for Unix host load and the process family
    the real NWS forecasters were designed around: it is *predictable*
    short-term, which is precisely what application-level scheduling
    exploits.
    """

    def __init__(
        self,
        mean: float = 0.6,
        phi: float = 0.9,
        sigma: float = 0.08,
        floor: float = 0.02,
        dt: float = 10.0,
        rng: RngStream | None = None,
    ) -> None:
        super().__init__(dt)
        self.mean = check_fraction("mean", mean)
        if not (0.0 <= phi < 1.0):
            raise ValueError(f"phi must be in [0, 1), got {phi}")
        self.phi = phi
        self.sigma = check_positive("sigma", sigma)
        self.floor = check_fraction("floor", floor)
        self.rng = rng if rng is not None else RngStream(0, "ar1")

    def _generate(self, k: int, prev: float | None) -> float:
        if prev is None:
            prev = self.mean
        value = self.mean + self.phi * (prev - self.mean) + self.rng.normal(0.0, self.sigma)
        return min(1.0, max(self.floor, value))

    def _generate_many(self, k0: int, count: int, prev: float | None) -> list[float]:
        noise = self.rng.generator.normal(0.0, self.sigma, count).tolist()
        mean, phi, floor = self.mean, self.phi, self.floor
        x = mean if prev is None else prev
        values = []
        for eps in noise:
            x = mean + phi * (x - mean) + eps
            x = min(1.0, max(floor, x))
            values.append(x)
        return values


class MarkovLoad(LoadProcess):
    """Two-state (busy/idle) Markov-modulated availability.

    Models a host where an interfering job arrives and departs: availability
    is ``idle_level`` in the idle state and ``busy_level`` when a competitor
    runs.  Transition probabilities are per epoch.
    """

    def __init__(
        self,
        idle_level: float = 0.95,
        busy_level: float = 0.25,
        p_busy: float = 0.1,
        p_idle: float = 0.3,
        dt: float = 10.0,
        rng: RngStream | None = None,
        start_busy: bool = False,
    ) -> None:
        super().__init__(dt)
        self.idle_level = check_fraction("idle_level", idle_level)
        self.busy_level = check_fraction("busy_level", busy_level)
        self.p_busy = check_fraction("p_busy", p_busy)
        self.p_idle = check_fraction("p_idle", p_idle)
        self.rng = rng if rng is not None else RngStream(0, "markov")
        self._busy = bool(start_busy)

    def _generate(self, k: int, prev: float | None) -> float:
        if self._busy:
            if self.rng.uniform() < self.p_idle:
                self._busy = False
        else:
            if self.rng.uniform() < self.p_busy:
                self._busy = True
        return self.busy_level if self._busy else self.idle_level

    def _generate_many(self, k0: int, count: int, prev: float | None) -> list[float]:
        draws = self.rng.generator.uniform(0.0, 1.0, count).tolist()
        busy = self._busy
        p_idle, p_busy = self.p_idle, self.p_busy
        busy_level, idle_level = self.busy_level, self.idle_level
        values = []
        for u in draws:
            if busy:
                if u < p_idle:
                    busy = False
            else:
                if u < p_busy:
                    busy = True
            values.append(busy_level if busy else idle_level)
        self._busy = busy
        return values


class SpikeLoad(LoadProcess):
    """Mostly-idle availability with occasional deep spikes of load.

    Each epoch is ``base`` availability except with probability ``p_spike``
    it drops to ``spike_level`` for a geometric number of epochs.  Models
    cron jobs, compile bursts, etc. — the *unpredictable* disturbances that
    degrade any forecast-driven schedule.
    """

    def __init__(
        self,
        base: float = 0.95,
        spike_level: float = 0.1,
        p_spike: float = 0.05,
        p_recover: float = 0.5,
        dt: float = 10.0,
        rng: RngStream | None = None,
    ) -> None:
        super().__init__(dt)
        self.base = check_fraction("base", base)
        self.spike_level = check_fraction("spike_level", spike_level)
        self.p_spike = check_fraction("p_spike", p_spike)
        self.p_recover = check_fraction("p_recover", p_recover)
        self.rng = rng if rng is not None else RngStream(0, "spike")
        self._in_spike = False

    def _generate(self, k: int, prev: float | None) -> float:
        if self._in_spike:
            if self.rng.uniform() < self.p_recover:
                self._in_spike = False
        else:
            if self.rng.uniform() < self.p_spike:
                self._in_spike = True
        return self.spike_level if self._in_spike else self.base

    def _generate_many(self, k0: int, count: int, prev: float | None) -> list[float]:
        draws = self.rng.generator.uniform(0.0, 1.0, count).tolist()
        in_spike = self._in_spike
        p_recover, p_spike = self.p_recover, self.p_spike
        spike_level, base = self.spike_level, self.base
        values = []
        for u in draws:
            if in_spike:
                if u < p_recover:
                    in_spike = False
            else:
                if u < p_spike:
                    in_spike = True
            values.append(spike_level if in_spike else base)
        self._in_spike = in_spike
        return values


class CompositeLoad(LoadProcess):
    """Product of component availabilities.

    Two independent sources of interference multiply: a host that delivers
    60% because of a competitor and 90% because of OS daemons delivers 54%.
    Component processes may have different epoch lengths; the composite is
    sampled on its own ``dt`` grid.
    """

    def __init__(self, components: Sequence[LoadProcess], dt: float = 10.0) -> None:
        super().__init__(dt)
        if not components:
            raise ValueError("CompositeLoad needs at least one component")
        self.components = list(components)

    def _generate(self, k: int, prev: float | None) -> float:
        t = (k + 0.5) * self.dt
        value = 1.0
        for comp in self.components:
            value *= comp.availability(t)
        return value


class IntervalLoad(LoadProcess):
    """Scheduled occupancy: full availability except during busy intervals.

    Other metacomputer applications are "experienced by an individual
    application in terms of the dynamically varying performance capability
    of ... resources" (§3).  ``IntervalLoad`` is how a *scheduled* job
    appears to everyone else: :meth:`occupy` marks a window during which
    the resource delivers only ``level`` of itself.  Overlapping intervals
    multiply (two competitors each halving the machine leave a quarter).

    Unlike the stochastic processes, this one is mutable and uncached.
    """

    def __init__(self, dt: float = 10.0) -> None:
        super().__init__(dt)
        self._intervals: list[tuple[float, float, float]] = []

    def occupy(self, start: float, end: float, level: float) -> None:
        """Mark ``[start, end)`` as busy: availability multiplied by ``level``."""
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        check_fraction("level", level)
        self._intervals.append((float(start), float(end), float(level)))

    def clear(self) -> None:
        """Remove all occupancy."""
        self._intervals.clear()

    @property
    def intervals(self) -> list[tuple[float, float, float]]:
        """Registered (start, end, level) windows."""
        return list(self._intervals)

    def availability(self, t: float) -> float:  # uncached by design
        value = 1.0
        for start, end, level in self._intervals:
            if start <= t < end:
                value *= level
        return value

    def mean_availability(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if t1 == t0:
            return self.availability(t0)
        # Integrate over the breakpoints of the piecewise-constant product.
        points = {t0, t1}
        for start, end, _ in self._intervals:
            if t0 < start < t1:
                points.add(start)
            if t0 < end < t1:
                points.add(end)
        cuts = sorted(points)
        total = 0.0
        for lo, hi in zip(cuts, cuts[1:]):
            total += self.availability(lo) * (hi - lo)
        return total / (t1 - t0)

    def _generate(self, k: int, prev: float | None) -> float:  # pragma: no cover
        raise AssertionError("IntervalLoad does not use the epoch cache")


class DynamicCompositeLoad(LoadProcess):
    """Uncached product of component availabilities.

    :class:`CompositeLoad` caches per epoch, which is correct for frozen
    stochastic components but wrong when a component is *mutable* (an
    :class:`IntervalLoad` receiving new occupancy as jobs are scheduled).
    This variant recomputes on every query; use it to overlay scheduled
    application load on a host's background load.
    """

    def __init__(self, components: Sequence[LoadProcess], dt: float = 10.0) -> None:
        super().__init__(dt)
        if not components:
            raise ValueError("DynamicCompositeLoad needs at least one component")
        self.components = list(components)

    def availability(self, t: float) -> float:
        value = 1.0
        for comp in self.components:
            value *= comp.availability(t)
        return value

    def mean_availability(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if t1 == t0:
            return self.availability(t0)
        # Sample on the epoch grid (components may have structure finer
        # than dt only via IntervalLoad breakpoints; dt/4 sampling keeps
        # the estimate close without enumerating every component's cuts).
        step = self.dt / 4.0
        total = 0.0
        t = t0
        while t < t1:
            hi = min(t + step, t1)
            total += self.availability(t) * (hi - t)
            t = hi
        return total / (t1 - t0)

    def _generate(self, k: int, prev: float | None) -> float:  # pragma: no cover
        raise AssertionError("DynamicCompositeLoad does not use the epoch cache")


class TraceLoad(LoadProcess):
    """Playback of an explicit availability trace.

    The trace repeats cyclically past its end; useful for unit tests (fully
    scripted conditions) and for replaying measured traces.
    """

    def __init__(self, trace: Sequence[float], dt: float = 10.0) -> None:
        super().__init__(dt)
        if len(trace) == 0:
            raise ValueError("trace must be non-empty")
        self.trace = [check_fraction("trace value", v) for v in trace]

    def _generate(self, k: int, prev: float | None) -> float:
        return self.trace[k % len(self.trace)]

    def _generate_many(self, k0: int, count: int, prev: float | None) -> list[float]:
        trace, period = self.trace, len(self.trace)
        return [trace[(k0 + i) % period] for i in range(count)]

"""Deterministic discrete-event simulation engine.

A small, dependency-free engine in the style of SimPy: a binary heap of
timestamped events, plus generator-based processes that ``yield`` either a
delay (``float``) or a :class:`Signal` to wait on.  Two features matter for
this reproduction:

- **Determinism.**  Events at equal timestamps fire in scheduling order
  (FIFO), so a seeded experiment replays identically.
- **Signals.**  The 3D-REACT pipeline (producer/consumer with bounded
  buffering) is expressed naturally with signal waits.

Two hot-path details: :class:`Process` and :class:`Signal` declare
``__slots__`` (simulations create them in bulk), and zero-delay events —
every process start and ``yield 0`` — bypass the heap through a FIFO ready
queue, merged with the heap by ``(time, seq)`` so the global firing order
is exactly what a pure heap would produce.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.obs.trace import get_tracer
from repro.util import perf

__all__ = ["Simulator", "Process", "Signal", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for engine misuse (e.g. scheduling into the past)."""


class Signal:
    """A broadcast condition processes can wait on.

    ``fire(payload)`` wakes every currently-waiting process; each waiter's
    ``yield signal`` expression evaluates to the payload.
    """

    __slots__ = ("name", "_waiters", "fire_count")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list["Process"] = []
        self.fire_count = 0

    def fire(self, payload: Any = None) -> int:
        """Wake all waiters; returns the number of processes woken."""
        waiters, self._waiters = self._waiters, []
        self.fire_count += 1
        for proc in waiters:
            proc._resume(payload)
        return len(waiters)

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    @property
    def waiting(self) -> int:
        """Number of processes currently blocked on this signal."""
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiting={self.waiting})"


class Process:
    """A generator-based simulation process.

    The wrapped generator may yield:

    - a non-negative ``float``/``int``: sleep for that many simulated seconds;
    - a :class:`Signal`: block until the signal fires (the yield returns the
      payload).

    When the generator returns, :attr:`done` becomes True and
    :attr:`result` holds its return value.
    """

    __slots__ = ("sim", "gen", "name", "done", "result", "finished")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self.finished = Signal(f"{name}:finished")

    def _step(self, send_value: Any = None) -> None:
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.finished.fire(stop.value)
            return
        if isinstance(yielded, Signal):
            yielded._add_waiter(self)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded!r}"
                )
            self.sim.schedule(float(yielded), self._resume, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def _resume(self, payload: Any) -> None:
        if not self.done:
            self._step(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, done={self.done})"


class Simulator:
    """The event loop.

    Examples
    --------
    >>> sim = Simulator()
    >>> seen = []
    >>> sim.schedule(2.0, seen.append, "b")
    >>> sim.schedule(1.0, seen.append, "a")
    >>> sim.run()
    2.0
    >>> seen
    ['a', 'b']
    """

    __slots__ = ("now", "_heap", "_seq", "_ready", "_zero_fast", "events_processed")

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        # FIFO of events scheduled with zero delay.  Entries are appended
        # with the current time and a monotone seq, and time never moves
        # backwards, so the deque is sorted by (time, seq) by construction
        # and can be merged with the heap without sifting.
        self._ready: deque[tuple[float, int, Callable, tuple]] = deque()
        self._zero_fast = perf.fastpath_enabled()
        self.events_processed = 0

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        if delay == 0 and self._zero_fast:
            self._ready.append((self.now, seq, fn, args))
        else:
            heapq.heappush(self._heap, (self.now + float(delay), seq, fn, args))

    def at(self, time: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute simulated time ``time``."""
        self.schedule(time - self.now, fn, *args)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process and start it at the current time."""
        proc = Process(self, gen, name or f"proc{self._seq}")
        self.schedule(0.0, proc._step, None)
        return proc

    def _pop_next(self) -> tuple[float, int, Callable, tuple]:
        """Remove and return the next event in (time, seq) order.

        Callers must ensure at least one event is queued.  Tuple comparison
        never reaches the (incomparable) callables because seq is unique.
        """
        ready, heap = self._ready, self._heap
        if ready and (not heap or ready[0] < heap[0]):
            return ready.popleft()
        return heapq.heappop(heap)

    def _peek_time(self) -> float:
        ready, heap = self._ready, self._heap
        if ready and (not heap or ready[0] < heap[0]):
            return ready[0][0]
        return heap[0][0]

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until the queues drain or simulated time passes ``until``.

        Returns the final simulated time.  ``max_events`` guards against
        accidental infinite event storms.
        """
        count = 0
        t_start = self.now
        while self._heap or self._ready:
            time = self._peek_time()
            if until is not None and time > until:
                self.now = until
                self._trace_run("run", t_start, count)
                return self.now
            if count >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            time, _seq, fn, args = self._pop_next()
            if time < self.now - 1e-12:
                raise SimulationError("event heap out of order (engine bug)")
            self.now = time
            fn(*args)
            self.events_processed += 1
            count += 1
        if until is not None and until > self.now:
            self.now = until
        self._trace_run("run", t_start, count)
        return self.now

    def _trace_run(self, method: str, t_start: float, count: int) -> None:
        """Emit one engine-run event when tracing is on (pure read)."""
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                f"sim.engine.{method}", layer="sim", t=self.now,
                t_start=t_start, events=count, pending=self.pending_events,
            )
            tracer.metrics.counter("sim.engine.events").inc(count)
            tracer.metrics.counter("sim.engine.runs").inc()

    def run_until_done(
        self,
        procs: Iterable[Process],
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> float:
        """Run until every process in ``procs`` has finished.

        Raises :class:`SimulationError` if the event queues drain (deadlock),
        ``until`` passes while any process is still pending, or more than
        ``max_events`` events fire (a guard against a process stuck in a
        self-rescheduling loop that never finishes).
        """
        procs = list(procs)
        deadline = until
        count = 0
        t_start = self.now
        while True:
            pending = [p for p in procs if not p.done]
            if not pending:
                self._trace_run("run_until_done", t_start, count)
                return self.now
            if not self._heap and not self._ready:
                raise SimulationError(
                    f"deadlock: {len(pending)} process(es) pending with no events: "
                    + ", ".join(p.name for p in pending[:5])
                )
            if deadline is not None and self._peek_time() > deadline:
                raise SimulationError(
                    f"deadline {deadline} passed with {len(pending)} process(es) pending"
                )
            if count >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            time, _seq, fn, args = self._pop_next()
            self.now = time
            fn(*args)
            self.events_processed += 1
            count += 1

    @property
    def pending_events(self) -> int:
        """Number of events currently queued."""
        return len(self._heap) + len(self._ready)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6g}, pending={self.pending_events})"

"""Deterministic discrete-event simulation engine.

A small, dependency-free engine in the style of SimPy: a binary heap of
timestamped events, plus generator-based processes that ``yield`` either a
delay (``float``) or a :class:`Signal` to wait on.  Two features matter for
this reproduction:

- **Determinism.**  Events at equal timestamps fire in scheduling order
  (FIFO), so a seeded experiment replays identically.
- **Signals.**  The 3D-REACT pipeline (producer/consumer with bounded
  buffering) is expressed naturally with signal waits.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = ["Simulator", "Process", "Signal", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for engine misuse (e.g. scheduling into the past)."""


class Signal:
    """A broadcast condition processes can wait on.

    ``fire(payload)`` wakes every currently-waiting process; each waiter's
    ``yield signal`` expression evaluates to the payload.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list["Process"] = []
        self.fire_count = 0

    def fire(self, payload: Any = None) -> int:
        """Wake all waiters; returns the number of processes woken."""
        waiters, self._waiters = self._waiters, []
        self.fire_count += 1
        for proc in waiters:
            proc._resume(payload)
        return len(waiters)

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    @property
    def waiting(self) -> int:
        """Number of processes currently blocked on this signal."""
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, waiting={self.waiting})"


class Process:
    """A generator-based simulation process.

    The wrapped generator may yield:

    - a non-negative ``float``/``int``: sleep for that many simulated seconds;
    - a :class:`Signal`: block until the signal fires (the yield returns the
      payload).

    When the generator returns, :attr:`done` becomes True and
    :attr:`result` holds its return value.
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self.finished = Signal(f"{name}:finished")

    def _step(self, send_value: Any = None) -> None:
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.finished.fire(stop.value)
            return
        if isinstance(yielded, Signal):
            yielded._add_waiter(self)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded!r}"
                )
            self.sim.schedule(float(yielded), self._resume, None)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def _resume(self, payload: Any) -> None:
        if not self.done:
            self._step(payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, done={self.done})"


class Simulator:
    """The event loop.

    Examples
    --------
    >>> sim = Simulator()
    >>> seen = []
    >>> sim.schedule(2.0, seen.append, "b")
    >>> sim.schedule(1.0, seen.append, "a")
    >>> sim.run()
    >>> seen
    ['a', 'b']
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + float(delay), self._seq, fn, args))
        self._seq += 1

    def at(self, time: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute simulated time ``time``."""
        self.schedule(time - self.now, fn, *args)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process and start it at the current time."""
        proc = Process(self, gen, name or f"proc{self._seq}")
        self.schedule(0.0, proc._step, None)
        return proc

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until the heap drains or simulated time passes ``until``.

        Returns the final simulated time.  ``max_events`` guards against
        accidental infinite event storms.
        """
        count = 0
        while self._heap:
            time, _seq, fn, args = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            if time < self.now - 1e-12:
                raise SimulationError("event heap out of order (engine bug)")
            self.now = time
            fn(*args)
            self.events_processed += 1
            count += 1
            if count > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_until_done(self, procs: Iterable[Process], until: Optional[float] = None) -> float:
        """Run until every process in ``procs`` has finished.

        Raises :class:`SimulationError` if the event heap drains (deadlock)
        or ``until`` passes while any process is still pending.
        """
        procs = list(procs)
        deadline = until
        while True:
            pending = [p for p in procs if not p.done]
            if not pending:
                return self.now
            if not self._heap:
                raise SimulationError(
                    f"deadlock: {len(pending)} process(es) pending with no events: "
                    + ", ".join(p.name for p in pending[:5])
                )
            if deadline is not None and self._heap[0][0] > deadline:
                raise SimulationError(
                    f"deadline {deadline} passed with {len(pending)} process(es) pending"
                )
            time, _seq, fn, args = heapq.heappop(self._heap)
            self.now = time
            fn(*args)
            self.events_processed += 1

    @property
    def pending_events(self) -> int:
        """Number of events currently queued."""
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6g}, pending={self.pending_events})"

"""Background job workloads: generative contention.

The testbeds' AR(1)/Markov availability processes model *statistical*
contention.  This module models it *generatively*: a stream of interfering
jobs (Poisson arrivals, log-uniform durations, random CPU shares) lands on
hosts and occupies them through :class:`~repro.sim.load.IntervalLoad` —
the same mechanism scheduled AppLeS applications use, so generated jobs
and scheduled applications are indistinguishable to the NWS, exactly as
§3 describes.

Use :func:`generate_jobs` for a reproducible job list and
:class:`JobWorkload` to stamp it onto a testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.load import DynamicCompositeLoad, IntervalLoad
from repro.sim.testbeds import Testbed
from repro.util.rng import RngStream
from repro.util.validation import check_positive

__all__ = ["BackgroundJob", "generate_jobs", "JobWorkload", "make_injectable"]


def make_injectable(testbed: Testbed) -> dict[str, IntervalLoad]:
    """Overlay a mutable occupancy process on every host of ``testbed``.

    Returns the per-host :class:`~repro.sim.load.IntervalLoad` injectors;
    occupancy registered on them is immediately visible to the hosts, the
    NWS sensors and the execution simulator.  This is the substrate both
    for generated background jobs (:class:`JobWorkload`) and for modelling
    scheduled AppLeS applications as contention
    (:mod:`repro.experiments.multiapp_exp`).
    """
    injectors: dict[str, IntervalLoad] = {}
    for host in testbed.hosts():
        injector = IntervalLoad(dt=host.load.dt)
        host.load = DynamicCompositeLoad([host.load, injector], dt=host.load.dt)
        injectors[host.name] = injector
    return injectors


@dataclass(frozen=True)
class BackgroundJob:
    """One interfering job."""

    host: str
    start: float
    duration: float
    level: float  # availability multiplier while the job runs

    @property
    def end(self) -> float:
        return self.start + self.duration


def generate_jobs(
    hosts: list[str],
    horizon_s: float,
    seed: int = 0,
    arrival_rate_per_hour: float = 6.0,
    min_duration_s: float = 30.0,
    max_duration_s: float = 1800.0,
    min_level: float = 0.2,
    max_level: float = 0.7,
) -> list[BackgroundJob]:
    """A reproducible Poisson job stream over ``[0, horizon_s]``.

    Arrivals are Poisson per host; durations are log-uniform between the
    bounds (short jobs common, long jobs rare); each job's CPU share is
    uniform in ``[min_level, max_level]`` — the availability multiplier
    its host suffers while it runs.
    """
    if not hosts:
        raise ValueError("need at least one host")
    check_positive("horizon_s", horizon_s)
    check_positive("arrival_rate_per_hour", arrival_rate_per_hour)
    if not (0.0 < min_duration_s <= max_duration_s):
        raise ValueError("need 0 < min_duration_s <= max_duration_s")
    if not (0.0 <= min_level <= max_level <= 1.0):
        raise ValueError("need 0 <= min_level <= max_level <= 1")

    import math

    rng = RngStream(seed, "jobs")
    jobs: list[BackgroundJob] = []
    mean_gap = 3600.0 / arrival_rate_per_hour
    for host in hosts:
        stream = rng.child(host)
        t = stream.exponential(mean_gap)
        while t < horizon_s:
            log_lo, log_hi = math.log(min_duration_s), math.log(max_duration_s)
            duration = math.exp(stream.uniform(log_lo, log_hi))
            level = stream.uniform(min_level, max_level)
            jobs.append(BackgroundJob(host=host, start=t, duration=duration,
                                      level=level))
            t += stream.exponential(mean_gap)
    jobs.sort(key=lambda j: j.start)
    return jobs


class JobWorkload:
    """Stamp a job stream onto a testbed's hosts.

    Wraps each host's load with an injector (via
    :func:`repro.experiments.multiapp_exp.make_injectable`) and registers
    every job as an occupancy window.  The workload can report
    instantaneous and windowed job pressure for diagnostics.
    """

    def __init__(self, testbed: Testbed, jobs: list[BackgroundJob]) -> None:
        self.testbed = testbed
        self.jobs = list(jobs)
        self.injectors: dict[str, IntervalLoad] = make_injectable(testbed)
        unknown = {j.host for j in jobs} - set(self.injectors)
        if unknown:
            raise KeyError(f"jobs reference unknown hosts: {sorted(unknown)}")
        for job in self.jobs:
            self.injectors[job.host].occupy(job.start, job.end, job.level)

    def active_jobs(self, t: float) -> list[BackgroundJob]:
        """Jobs running at time ``t``."""
        return [j for j in self.jobs if j.start <= t < j.end]

    def pressure(self, host: str, t: float) -> float:
        """Product of active job levels on ``host`` at ``t`` (1.0 = idle)."""
        value = 1.0
        for job in self.active_jobs(t):
            if job.host == host:
                value *= job.level
        return value

    def __len__(self) -> int:
        return len(self.jobs)

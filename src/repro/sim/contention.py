"""Contention / time-sharing slowdown model.

The paper cites Figueira & Berman [7] ("Modeling the effects of contention
on the performance of heterogeneous applications", HPDC 1996) for a formal
treatment of slowdown.  The essential model: a CPU-bound process sharing a
uniprocessor with ``k`` competing CPU-bound processes receives ``1/(k+1)``
of the machine, i.e. experiences a slowdown of ``k+1``; equivalently a host
with Unix load average ``q`` delivers availability ``1/(1+q)``.

These conversions are used to parameterise the availability processes in
:mod:`repro.sim.load` from "number of competing jobs" style descriptions.
"""

from __future__ import annotations

from repro.util.validation import check_nonnegative

__all__ = [
    "timeshared_slowdown",
    "availability_from_load",
    "load_from_availability",
    "effective_rate",
]


def timeshared_slowdown(ncompeting: float) -> float:
    """Slowdown of a CPU-bound task with ``ncompeting`` CPU-bound competitors.

    Round-robin time-sharing gives the task a ``1/(n+1)`` share, so its
    completion time stretches by ``n+1``.
    """
    n = check_nonnegative("ncompeting", ncompeting)
    return n + 1.0


def availability_from_load(load_average: float) -> float:
    """Deliverable CPU fraction on a host with the given Unix load average."""
    q = check_nonnegative("load_average", load_average)
    return 1.0 / (1.0 + q)


def load_from_availability(availability: float) -> float:
    """Inverse of :func:`availability_from_load`."""
    a = float(availability)
    if not (0.0 < a <= 1.0):
        raise ValueError(f"availability must be in (0, 1], got {availability}")
    return 1.0 / a - 1.0


def effective_rate(nominal_rate: float, availability: float) -> float:
    """Deliverable rate: ``nominal_rate`` scaled by availability.

    Works for both CPU (MFLOP/s) and network (MB/s) resources; the paper's
    key observation (§3.2) is that from the application's perspective a
    contended resource simply *is* a slower resource.
    """
    r = check_nonnegative("nominal_rate", nominal_rate)
    a = float(availability)
    if not (0.0 <= a <= 1.0):
        raise ValueError(f"availability must be in [0, 1], got {availability}")
    return r * a

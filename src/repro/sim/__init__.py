"""Simulated metacomputer substrate.

The paper's experiments ran on the 1996 SDSC/PCL testbed (Figure 2): a
heterogeneous collection of non-dedicated workstations on shared Ethernet
segments and an FDDI ring, joined by a gateway.  This subpackage replaces
that hardware with an explicit simulation:

- :mod:`repro.sim.engine` — a deterministic discrete-event engine,
- :mod:`repro.sim.load` — stochastic background-load (availability) processes,
- :mod:`repro.sim.host` — hosts with nominal speed, memory and load,
- :mod:`repro.sim.memory` — real-memory/paging model,
- :mod:`repro.sim.link` / :mod:`repro.sim.topology` — links, shared segments
  and routed paths,
- :mod:`repro.sim.contention` — time-sharing slowdown model,
- :mod:`repro.sim.execution` — epoch-based execution of work allocations,
- :mod:`repro.sim.execution_fast` — the vectorised (compiled) executor the
  fast-path gate dispatches to,
- :mod:`repro.sim.execution_ensemble` — the ensemble tensor backend that
  batches many replicas into one struct-of-arrays pass,
- :mod:`repro.sim.testbeds` — canned topologies (Figure 2 and variants,
  plus the parameterised :func:`~repro.sim.testbeds.synthetic_metacomputer`
  for scaling studies).
"""

from repro.sim.contention import availability_from_load, timeshared_slowdown
from repro.sim.engine import Process, Signal, Simulator
from repro.sim.execution import (
    IterationResult,
    WorkAssignment,
    simulate_iterations,
    simulate_iterations_reference,
    validate_assignments,
)
from repro.sim.execution_ensemble import (
    EnsembleExecution,
    ReplicaSpec,
    ensemble_summary,
    replicated,
    ring_assignments,
    run_ensemble,
)
from repro.sim.execution_fast import CompiledExecution
from repro.sim.host import Host
from repro.sim.jobs import BackgroundJob, JobWorkload, generate_jobs, make_injectable
from repro.sim.link import Link, SharedSegment
from repro.sim.load import (
    AR1Load,
    CompositeLoad,
    ConstantLoad,
    DynamicCompositeLoad,
    IntervalLoad,
    LoadProcess,
    MarkovLoad,
    SpikeLoad,
    TraceLoad,
    epoch_cached,
)
from repro.sim.memory import MemoryModel
from repro.sim.testbeds import (
    Testbed,
    casa_testbed,
    nile_testbed,
    sdsc_pcl_testbed,
    sdsc_pcl_with_sp2,
    synthetic_metacomputer,
)
from repro.sim.topology import Topology
from repro.sim.trace_io import load_trace, record_trace, save_trace

__all__ = [
    "Simulator",
    "Process",
    "Signal",
    "LoadProcess",
    "ConstantLoad",
    "AR1Load",
    "MarkovLoad",
    "SpikeLoad",
    "CompositeLoad",
    "DynamicCompositeLoad",
    "IntervalLoad",
    "TraceLoad",
    "Host",
    "BackgroundJob",
    "JobWorkload",
    "generate_jobs",
    "make_injectable",
    "MemoryModel",
    "Link",
    "SharedSegment",
    "Topology",
    "save_trace",
    "load_trace",
    "record_trace",
    "timeshared_slowdown",
    "availability_from_load",
    "WorkAssignment",
    "IterationResult",
    "simulate_iterations",
    "simulate_iterations_reference",
    "validate_assignments",
    "CompiledExecution",
    "EnsembleExecution",
    "ReplicaSpec",
    "run_ensemble",
    "replicated",
    "ring_assignments",
    "ensemble_summary",
    "epoch_cached",
    "Testbed",
    "sdsc_pcl_testbed",
    "sdsc_pcl_with_sp2",
    "casa_testbed",
    "nile_testbed",
    "synthetic_metacomputer",
]

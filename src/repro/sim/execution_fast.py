"""Vectorised (compiled) execution of work allocations.

:func:`repro.sim.execution.simulate_iterations` is the funnel every
experiment drains through — fig5/fig6 execution curves, multi-application
contention, the adaptive rescheduling loop — and the reference
implementation re-resolves routes, re-queries epoch load traces and
re-derives bandwidth shares on every barrier step.  This module compiles
``(topology, assignments)`` **once** into struct-of-arrays form and then
steps all hosts per iteration against precomputed tables:

- **Per-host capacity tables** — each epoch-cached availability process is
  bulk-materialised (:meth:`repro.sim.load.LoadProcess.availability_array`)
  into a per-epoch deliverable-rate table
  (:meth:`repro.sim.host.Host.rate_table`) with a cumulative-capacity
  prefix sum alongside; a work integration brackets its completion epoch
  by a *searchsorted inversion* of that prefix (``bisect`` over cumulative
  capacity) instead of discovering it one epoch-cache query at a time.
- **Per-pair route tables** — routes, latencies and flow counts are
  resolved at compile time; each communicating pair's bottleneck
  bandwidth becomes a NumPy min-reduce over the stacked link-bandwidth
  tables (:meth:`repro.sim.topology.Topology.pair_bandwidth_table`), so
  the per-iteration comm charge is a single epoch-index lookup.
- **Batched stepping** — one tight loop advances every host per barrier
  step with no per-step route resolution, no per-step latency summation
  and no per-step epoch-cache bookkeeping.

Bit-identity contract
---------------------
The executor must reproduce the reference loop *float-for-float*
(``tests/test_execution_equivalence.py`` proves it on every canned
testbed).  Two consequences shape the implementation:

- The reference work integrator drains work by **sequential** floating
  subtraction (``remaining -= rate * window``), whose rounding history a
  naive prefix-sum inversion cannot reproduce (``a - b - c`` ≠
  ``a - (b + c)`` in floats).  The prefix sum is therefore used to
  *bracket and bulk-materialise* the epochs a computation will span; the
  final answer comes from replaying the reference's exact subtraction
  sequence over the precomputed rate table.  Min-reduction, by contrast,
  is exact (order-free, no rounding), so bandwidth bottlenecks are taken
  straight from the combined tables.
- Mutable availability processes (:class:`repro.sim.load.IntervalLoad`
  under a :class:`~repro.sim.load.DynamicCompositeLoad`, as the
  multi-application load injectors install) are not functions of the
  epoch index, so they cannot be tabled; hosts and routes carrying them
  fall back to live queries at exactly the instants the reference loop
  would issue them.

The fast path is gated by :mod:`repro.util.perf` like every other
optimised path: ``REPRO_NO_FASTPATH=1`` restores the reference loop as
the differential oracle.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left

from repro.obs.trace import get_tracer
from repro.sim.execution import (
    IterationResult,
    WorkAssignment,
    count_flows,
    validate_assignments,
)
from repro.sim.host import _MAX_EPOCHS, Host
from repro.sim.link import Link
from repro.sim.load import epoch_cached
from repro.sim.topology import Topology
from repro.util.validation import check_positive

__all__ = ["CompiledExecution"]

#: Epochs materialised by the first growth of any table.
_GROW_MIN = 64


class _TableCompute:
    """Work integrator over a precomputed per-epoch rate table.

    Replays :meth:`repro.sim.host.Host.time_to_compute` float-for-float:
    same epoch indexing (clamped floor), same completion test, same
    sequential subtraction, same final division — but against a
    bulk-materialised rate table instead of per-epoch cache queries, with
    the cumulative-capacity prefix (searchsorted inversion) sizing the
    materialisation for multi-epoch integrations.
    """

    __slots__ = ("name", "load", "dt", "footprint_mb", "host", "rates", "prefix", "n")

    def __init__(self, host: Host, footprint_mb: float) -> None:
        self.name = host.name
        self.host = host
        self.load = host.load
        self.dt = host.load.dt
        self.footprint_mb = footprint_mb
        self.rates: list[float] = []
        self.prefix: list[float] = []
        self.n = 0

    def _materialise(self, n_target: int) -> None:
        """Grow the rate/prefix tables to at least ``n_target`` epochs."""
        n_new = max(_GROW_MIN, n_target, 2 * self.n)
        # The prefix holds approximate full-epoch capacities; it is used
        # only to bracket the completion epoch, never to produce a result
        # float.
        rates, prefix = self.host.capacity_prefix(n_new, self.footprint_mb)
        self.rates = rates.tolist()
        self.prefix = prefix.tolist()
        self.n = n_new

    def _presize(self, k0: int, work: float) -> None:
        """Materialise through the bracketed completion epoch of ``work``.

        Searchsorted inversion of the cumulative-capacity prefix: the
        first epoch whose cumulative capacity reaches the outstanding
        work bounds the integration span, so the table is extended in one
        bulk step instead of epoch by epoch.  A small margin covers the
        bracket being approximate (the walk guards the exact boundary).
        """
        prefix = self.prefix
        base = prefix[k0 - 1] if k0 > 0 else 0.0
        target = base + work
        j = bisect_left(prefix, target)
        while j >= self.n and self.n < k0 + _MAX_EPOCHS:
            self._materialise(2 * self.n)
            prefix = self.prefix
            j = bisect_left(prefix, target)
        if j + 3 > self.n:
            self._materialise(j + 3)

    def time(self, work, t0: float) -> float:
        if work == 0.0:
            return 0.0
        dt = self.dt
        t = float(t0)
        k = int(math.floor(t / dt))
        if k < 0:
            k = 0
        if k + 2 > self.n:
            self._materialise(k + 2)
        rate = self.rates[k]
        # Single-epoch exit: the common case once tables are warm.
        if rate > 0.0:
            if work <= rate * ((k + 1) * dt - t):
                return (t + work / rate) - t0
        # Multi-epoch: bracket via the prefix inversion, then replay the
        # reference's exact sequential subtraction over the table.
        self._presize(k, work)
        rates = self.rates
        n = self.n
        remaining = work
        for _ in range(_MAX_EPOCHS):
            if k >= n:
                self._materialise(k + 2)
                rates = self.rates
                n = self.n
            rate = rates[k]
            epoch_end = (k + 1) * dt
            if rate > 0.0:
                cap = rate * (epoch_end - t)
                if remaining <= cap:
                    return (t + remaining / rate) - t0
                remaining -= cap
            t = epoch_end
            k = int(math.floor(t / dt))
            if k < 0:
                k = 0
        raise RuntimeError(
            f"host {self.name!r}: work integration exceeded {_MAX_EPOCHS} epochs "
            "(availability pinned near zero?)"
        )


class _LiveCompute:
    """Work integrator for mutable loads: defer to the reference method."""

    __slots__ = ("host", "footprint_mb")

    def __init__(self, host: Host, footprint_mb: float) -> None:
        self.host = host
        self.footprint_mb = footprint_mb

    def time(self, work, t0: float) -> float:
        return self.host.time_to_compute(work, t0, self.footprint_mb)


class _PairTable:
    """Epoch-indexed bottleneck bandwidth for one communicating pair."""

    __slots__ = ("topology", "a", "b", "flows", "dt", "values", "n")

    def __init__(
        self, topology: Topology, a: str, b: str, flows: dict[str, int]
    ) -> None:
        self.topology = topology
        self.a = a
        self.b = b
        self.flows = flows
        self.dt = 0.0
        self.values: list[float] = []
        self.n = 0

    def try_compile(self) -> bool:
        """Build the min-reduced table; False if the route is not tabular."""
        out = self.topology.pair_bandwidth_table(
            self.a, self.b, _GROW_MIN, self.flows
        )
        if out is None:
            return False
        table, dt = out
        self.values = table.tolist()
        self.dt = dt
        self.n = len(self.values)
        return True

    def _materialise(self, n_target: int) -> None:
        n_new = max(_GROW_MIN, n_target, 2 * self.n)
        table, _ = self.topology.pair_bandwidth_table(
            self.a, self.b, n_new, self.flows
        )
        self.values = table.tolist()
        self.n = n_new

    def bandwidth(self, t: float) -> float:
        e = int(math.floor(t / self.dt))
        if e < 0:
            e = 0
        if e >= self.n:
            self._materialise(e + 2)
        return self.values[e]


class _LiveRoute:
    """Bottleneck bandwidth by live link queries (mutable link loads)."""

    __slots__ = ("links",)

    def __init__(self, links: list[tuple[Link, int]]) -> None:
        self.links = links

    def bandwidth(self, t: float) -> float:
        return min(link.deliverable_bandwidth(t, f) for link, f in self.links)


class _HostPlan:
    """One assignment compiled: work, overhead, integrator, comm entries."""

    __slots__ = ("name", "work", "overhead", "compute", "comm")

    def __init__(self, name, work, overhead, compute, comm) -> None:
        self.name = name
        self.work = work
        self.overhead = overhead
        self.compute = compute
        self.comm = comm

    def step(self, t: float) -> float:
        """Compute + comm + overhead for one barrier step starting at ``t``.

        Mirrors the reference loop body exactly, including the
        short-circuit to ``inf`` when a bottleneck delivers nothing.
        """
        compute = self.compute.time(self.work, t)
        comm = 0.0
        for nbytes, latency, route in self.comm:
            bw = route.bandwidth(t)
            if bw <= 0.0:
                comm = float("inf")
                break
            comm += latency + nbytes / bw
        return compute + comm + self.overhead


class CompiledExecution:
    """A one-time compilation of ``(topology, assignments)``.

    Construction resolves routes, latencies and flow counts and builds
    the per-host capacity and per-pair bandwidth tables; :meth:`run`
    steps the whole ensemble.  The object may be reused across multiple
    :meth:`run` calls (the adaptive runner executes the same schedule in
    chunks at successive start times) — the tables are deterministic
    functions of the frozen load processes, and mutable loads are queried
    live, so reuse never stales.
    """

    def __init__(
        self, topology: Topology, assignments: list[WorkAssignment]
    ) -> None:
        tracer = get_tracer()
        compile_t0 = time.perf_counter() if tracer.enabled else 0.0
        validate_assignments(topology, assignments)
        flows = count_flows(topology, assignments)
        live_hosts = 0
        live_routes = 0
        tabled_routes = 0
        plans: list[_HostPlan] = []
        for wa in assignments:
            host = topology.host(wa.host)
            if epoch_cached(host.load):
                compute: _TableCompute | _LiveCompute = _TableCompute(
                    host, wa.footprint_mb
                )
            else:
                compute = _LiveCompute(host, wa.footprint_mb)
                live_hosts += 1
            comm = []
            for peer, nbytes in wa.comm_bytes.items():
                if nbytes <= 0 or peer == wa.host:
                    continue
                links = topology.route(wa.host, peer)
                if not links:
                    continue
                latency = topology.path_latency(wa.host, peer)
                pair = _PairTable(topology, wa.host, peer, flows)
                route: _PairTable | _LiveRoute = pair
                if pair.try_compile():
                    tabled_routes += 1
                else:
                    route = _LiveRoute(
                        [
                            (link, max(1, flows.get(link.name, 1)))
                            for link in links
                        ]
                    )
                    live_routes += 1
                comm.append((nbytes, latency, route))
            plans.append(
                _HostPlan(wa.host, wa.work_mflop, wa.overhead_s, compute, comm)
            )
        self._plans = plans
        if tracer.enabled:
            tracer.event(
                "sim.compile", layer="sim",
                hosts=len(plans), live_hosts=live_hosts,
                tabled_routes=tabled_routes, live_routes=live_routes,
                wall_s=time.perf_counter() - compile_t0,
            )
            tracer.metrics.counter("sim.compiles").inc()
            tracer.metrics.counter("sim.live_fallback_hosts").inc(live_hosts)
            tracer.metrics.counter("sim.live_fallback_routes").inc(live_routes)
            tracer.metrics.histogram("sim.compile_wall_s").observe(
                time.perf_counter() - compile_t0
            )

    def run(self, iterations: int, t0: float = 0.0) -> IterationResult:
        """Simulate ``iterations`` barrier steps; see ``simulate_iterations``."""
        check_positive("iterations", iterations)
        plans = self._plans
        t = float(t0)
        iteration_times: list[float] = []
        busy = [0.0] * len(plans)
        append = iteration_times.append
        for _ in range(int(iterations)):
            step_max = 0.0
            for i, plan in enumerate(plans):
                step = plan.step(t)
                busy[i] += step
                if step > step_max:
                    step_max = step
            append(step_max)
            t += step_max
        return IterationResult(
            total_time=t - t0,
            iteration_times=iteration_times,
            host_busy_time={
                plan.name: b for plan, b in zip(plans, busy)
            },
        )

"""Epoch-based execution of work allocations.

Iterative data-parallel codes (Jacobi2D is the paper's example) run as a
sequence of barrier-synchronised steps: every host computes its region, then
exchanges borders with its neighbours.  The executor charges each step at
the simulated time it actually happens, so availability changes *during*
the run are felt — this is what separates a schedule built from good
forecasts from one built from nominal speeds.

Model per iteration ``k`` beginning at time ``t_k``:

``step_i = compute_i(t_k) + comm_i(t_k)``  and  ``t_{k+1} = t_k + max_i step_i``

Compute time integrates work through the host's availability trace
(:meth:`repro.sim.host.Host.time_to_compute`); communication is charged at
the bottleneck deliverable bandwidth with flow counts derived from the
allocation (concurrent border exchanges share segments).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.obs.trace import get_tracer
from repro.sim.topology import RouteError, Topology
from repro.util import perf
from repro.util.validation import check_nonnegative, check_positive

__all__ = [
    "WorkAssignment",
    "IterationResult",
    "simulate_iterations",
    "simulate_iterations_reference",
    "validate_assignments",
    "count_flows",
]


@dataclass
class WorkAssignment:
    """Per-host work for one iteration of a data-parallel step.

    Parameters
    ----------
    host:
        Host name in the topology.
    work_mflop:
        Floating-point work per iteration.
    comm_bytes:
        Mapping peer-host-name → bytes exchanged with that peer per
        iteration (counted once; the exchange is symmetric).
    footprint_mb:
        Resident working set on this host (drives the paging model).
    overhead_s:
        Fixed per-iteration runtime overhead charged to this host
        (synchronisation, region setup).
    """

    host: str
    work_mflop: float
    comm_bytes: dict[str, float] = field(default_factory=dict)
    footprint_mb: float = 0.0
    overhead_s: float = 0.0

    def __post_init__(self) -> None:
        check_nonnegative("work_mflop", self.work_mflop)
        check_nonnegative("footprint_mb", self.footprint_mb)
        check_nonnegative("overhead_s", self.overhead_s)
        for peer, nbytes in self.comm_bytes.items():
            check_nonnegative(f"comm_bytes[{peer!r}]", nbytes)


@dataclass(frozen=True)
class IterationResult:
    """Outcome of a simulated run.

    Attributes
    ----------
    total_time:
        Wall-clock seconds for all iterations.
    iteration_times:
        Per-iteration durations.
    host_busy_time:
        Per-host total busy (compute+comm) seconds; the rest is barrier wait.
    """

    total_time: float
    iteration_times: list[float]
    host_busy_time: dict[str, float]

    @property
    def mean_iteration_time(self) -> float:
        """Average seconds per iteration."""
        if not self.iteration_times:
            return 0.0
        return self.total_time / len(self.iteration_times)

    def efficiency(self) -> float:
        """Mean fraction of the makespan each host spent busy (1.0 = perfectly balanced)."""
        if not self.host_busy_time or self.total_time <= 0.0:
            return 1.0
        fractions = [busy / self.total_time for busy in self.host_busy_time.values()]
        return sum(fractions) / len(fractions)


def count_flows(topology: Topology, assignments: list[WorkAssignment]) -> dict[str, int]:
    """Number of concurrent flows each link carries during an exchange phase.

    Each communicating (host, peer) pair contributes one flow to every link
    on its route.  Pairs are deduplicated (an exchange is one bidirectional
    flow for bandwidth-sharing purposes).
    """
    pairs: set[tuple[str, str]] = set()
    for wa in assignments:
        for peer, nbytes in wa.comm_bytes.items():
            if nbytes > 0 and peer != wa.host:
                pairs.add(tuple(sorted((wa.host, peer))))  # type: ignore[arg-type]
    flows: Counter[str] = Counter()
    for a, b in pairs:
        for link in topology.route(a, b):
            flows[link.name] += 1
    return dict(flows)


def validate_assignments(
    topology: Topology, assignments: list[WorkAssignment]
) -> None:
    """Check an allocation against the topology before simulating it.

    Raises ``ValueError`` naming the offending host when an assignment
    references a host missing from the topology, and naming the pair when
    a ``comm_bytes`` peer has no route — instead of the opaque ``KeyError``
    the execution loop would otherwise surface mid-run.
    """
    if not assignments:
        raise ValueError("need at least one work assignment")
    names = [wa.host for wa in assignments]
    if len(set(names)) != len(names):
        raise ValueError("duplicate host in assignments")
    for wa in assignments:
        if wa.host not in topology.hosts:
            raise ValueError(
                f"assignment names host {wa.host!r} which is not in the "
                f"topology (hosts: {sorted(topology.hosts)})"
            )
        for peer, nbytes in wa.comm_bytes.items():
            if nbytes <= 0 or peer == wa.host:
                continue
            try:
                topology.route(wa.host, peer)
            except RouteError:
                raise ValueError(
                    f"assignment for host {wa.host!r} names comm peer "
                    f"{peer!r} with no route in the topology"
                ) from None
            except KeyError:
                raise ValueError(
                    f"assignment for host {wa.host!r} names comm peer "
                    f"{peer!r} which is not a node in the topology"
                ) from None


def simulate_iterations(
    topology: Topology,
    assignments: list[WorkAssignment],
    iterations: int,
    t0: float = 0.0,
) -> IterationResult:
    """Simulate ``iterations`` barrier-synchronised steps of an allocation.

    With fast paths on (:func:`repro.util.perf.fastpath_enabled`, the
    default) the allocation is compiled once into struct-of-arrays form
    and stepped by the vectorised executor
    (:class:`repro.sim.execution_fast.CompiledExecution`), which is
    bit-identical to the reference loop; ``REPRO_NO_FASTPATH=1`` restores
    the reference loop (:func:`simulate_iterations_reference`) as the
    differential oracle.

    Parameters
    ----------
    topology:
        The metacomputer.
    assignments:
        One :class:`WorkAssignment` per participating host.
    iterations:
        Number of steps.
    t0:
        Simulated start time (lets experiments start under different load
        conditions).
    """
    check_positive("iterations", iterations)
    validate_assignments(topology, assignments)
    fast = perf.fastpath_enabled()
    tracer = get_tracer()
    with tracer.span(
        "sim.execute", layer="sim", t=t0,
        hosts=len(assignments), iterations=int(iterations),
        mode="fast" if fast else "reference",
    ) as span:
        if fast:
            from repro.sim.execution_fast import CompiledExecution

            result = CompiledExecution(topology, assignments).run(iterations, t0)
        else:
            result = simulate_iterations_reference(
                topology, assignments, iterations, t0
            )
        if tracer.enabled:
            span.set_end(t0 + result.total_time)
            span.attrs["total_time"] = result.total_time
            tracer.metrics.counter(
                "sim.executions.fast" if fast else "sim.executions.reference"
            ).inc()
            tracer.metrics.counter("sim.iterations").inc(int(iterations))
    return result


def simulate_iterations_reference(
    topology: Topology,
    assignments: list[WorkAssignment],
    iterations: int,
    t0: float = 0.0,
) -> IterationResult:
    """The straightforward per-iteration × per-host × per-peer loop.

    This is the seed implementation, kept live as the differential oracle
    the vectorised executor is proven against float-for-float
    (``tests/test_execution_equivalence.py``).
    """
    check_positive("iterations", iterations)
    validate_assignments(topology, assignments)
    hosts = {wa.host: topology.host(wa.host) for wa in assignments}
    flows = count_flows(topology, assignments)

    t = float(t0)
    iteration_times: list[float] = []
    busy: dict[str, float] = {wa.host: 0.0 for wa in assignments}

    for _ in range(int(iterations)):
        step_max = 0.0
        for wa in assignments:
            host = hosts[wa.host]
            compute = host.time_to_compute(wa.work_mflop, t, wa.footprint_mb)
            comm = 0.0
            for peer, nbytes in wa.comm_bytes.items():
                if nbytes <= 0 or peer == wa.host:
                    continue
                links = topology.route(wa.host, peer)
                if not links:
                    continue
                bw = min(
                    link.deliverable_bandwidth(t, max(1, flows.get(link.name, 1)))
                    for link in links
                )
                if bw <= 0.0:
                    comm = float("inf")
                    break
                comm += topology.path_latency(wa.host, peer) + nbytes / bw
            step = compute + comm + wa.overhead_s
            busy[wa.host] += step
            step_max = max(step_max, step)
        iteration_times.append(step_max)
        t += step_max

    return IterationResult(
        total_time=t - t0,
        iteration_times=iteration_times,
        host_busy_time=busy,
    )

"""Availability-trace persistence.

Measured load traces are how simulated experiments connect to reality:
record a trace (from the simulator or, in principle, from real ``uptime``
sampling), save it, replay it later through
:class:`~repro.sim.load.TraceLoad` for a fully scripted experiment.

The format is deliberately plain JSON::

    {"dt": 5.0, "name": "alpha1", "values": [0.91, 0.88, ...]}
"""

from __future__ import annotations

import json
import pathlib

from repro.sim.load import LoadProcess, TraceLoad
from repro.util.validation import check_positive

__all__ = ["save_trace", "load_trace", "record_trace"]


def record_trace(load: LoadProcess, duration_s: float, t0: float = 0.0) -> list[float]:
    """Sample a load process into a plain epoch-value list.

    Records ``ceil(duration / dt)`` epochs starting at ``t0``.
    """
    check_positive("duration_s", duration_s)
    n = max(1, int(-(-duration_s // load.dt)))
    return [load.availability(t0 + (k + 0.5) * load.dt) for k in range(n)]


def save_trace(
    path: str | pathlib.Path,
    values: list[float],
    dt: float,
    name: str = "",
) -> None:
    """Write a trace to ``path`` as JSON."""
    check_positive("dt", dt)
    if not values:
        raise ValueError("trace must be non-empty")
    for v in values:
        if not (0.0 <= v <= 1.0):
            raise ValueError(f"trace values must be in [0, 1], got {v}")
    payload = {"dt": float(dt), "name": name, "values": [float(v) for v in values]}
    pathlib.Path(path).write_text(json.dumps(payload))


def load_trace(path: str | pathlib.Path) -> TraceLoad:
    """Read a JSON trace back as a :class:`~repro.sim.load.TraceLoad`.

    Raises ``ValueError`` on malformed files (missing keys, bad ranges).
    """
    raw = pathlib.Path(path).read_text()
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not a JSON trace file: {path}") from exc
    try:
        dt = float(payload["dt"])
        values = [float(v) for v in payload["values"]]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"trace file missing dt/values: {path}") from exc
    return TraceLoad(values, dt=dt)

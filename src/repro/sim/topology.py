"""Network topology: hosts, segments and routed paths.

The topology is an undirected multigraph whose vertices are host names plus
infrastructure nodes (gateways, switches) and whose edges are
:class:`~repro.sim.link.Link` objects.  Routing minimises hop count with
latency as a tie-break (Dijkstra on ``(hops, latency)``), which matches the
flat 1996 testbed where every pair had an obvious single route.

Path metrics follow the usual composition rules: latency adds, bandwidth is
the bottleneck (minimum deliverable bandwidth along the path).
"""

from __future__ import annotations

import heapq
from typing import Iterable

import numpy as np

from repro.sim.host import Host
from repro.sim.link import Link
from repro.sim.load import epoch_cached
from repro.util.validation import check_nonnegative

__all__ = ["Topology", "RouteError"]


class RouteError(KeyError):
    """Raised when no route exists between two nodes."""


class Topology:
    """An undirected network graph over hosts and infrastructure nodes."""

    def __init__(self) -> None:
        self.hosts: dict[str, Host] = {}
        self._nodes: set[str] = set()
        # adjacency: node -> list of (neighbor, link)
        self._adj: dict[str, list[tuple[str, Link]]] = {}
        self.links: dict[str, Link] = {}
        self._route_cache: dict[tuple[str, str], list[Link]] = {}
        self._latency_cache: dict[tuple[str, str], float] = {}

    # -- construction --------------------------------------------------------
    def add_host(self, host: Host) -> Host:
        """Register a host vertex."""
        if host.name in self.hosts:
            raise ValueError(f"duplicate host {host.name!r}")
        self.hosts[host.name] = host
        self._add_node(host.name)
        return host

    def add_node(self, name: str) -> None:
        """Register an infrastructure vertex (gateway, switch, segment hub)."""
        self._add_node(name)

    def _add_node(self, name: str) -> None:
        if not name:
            raise ValueError("node name must be non-empty")
        self._nodes.add(name)
        self._adj.setdefault(name, [])

    def connect(self, a: str, b: str, link: Link) -> None:
        """Attach ``a`` and ``b`` with ``link`` (undirected)."""
        for node in (a, b):
            if node not in self._nodes:
                raise KeyError(f"unknown node {node!r}; add hosts/nodes first")
        if a == b:
            raise ValueError("cannot connect a node to itself")
        if link.name in self.links and self.links[link.name] is not link:
            raise ValueError(f"distinct link reuses name {link.name!r}")
        self.links[link.name] = link
        self._adj[a].append((b, link))
        self._adj[b].append((a, link))
        self._route_cache.clear()
        self._latency_cache.clear()

    def attach_segment(self, link: Link, members: Iterable[str]) -> None:
        """Model a broadcast segment as a hub node all members connect to.

        Each member reaches the hub over the *same* :class:`Link` object, so
        segment bandwidth/availability is shared by construction.  The hub
        vertex is named ``"seg:" + link.name``.
        """
        hub = f"seg:{link.name}"
        self._add_node(hub)
        members = list(members)
        if len(members) < 2:
            raise ValueError("a segment needs at least two members")
        for m in members:
            self.connect(m, hub, link)

    # -- queries ------------------------------------------------------------
    @property
    def nodes(self) -> set[str]:
        """All vertex names (hosts + infrastructure)."""
        return set(self._nodes)

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self.hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    def route(self, a: str, b: str) -> list[Link]:
        """The sequence of links on the route from ``a`` to ``b``.

        Minimises ``(hop count, total latency)``.  A host's route to itself
        is the empty list (local communication is free).
        """
        if a not in self._nodes or b not in self._nodes:
            missing = a if a not in self._nodes else b
            raise KeyError(f"unknown node {missing!r}")
        if a == b:
            return []
        cached = self._route_cache.get((a, b))
        if cached is not None:
            return cached
        # Dijkstra on (hops, latency).
        dist: dict[str, tuple[int, float]] = {a: (0, 0.0)}
        prev: dict[str, tuple[str, Link]] = {}
        heap: list[tuple[int, float, str]] = [(0, 0.0, a)]
        while heap:
            hops, lat, node = heapq.heappop(heap)
            if (hops, lat) > dist.get(node, (1 << 30, float("inf"))):
                continue
            if node == b:
                break
            for nbr, link in self._adj[node]:
                cand = (hops + 1, lat + link.latency_s)
                if cand < dist.get(nbr, (1 << 30, float("inf"))):
                    dist[nbr] = cand
                    prev[nbr] = (node, link)
                    heapq.heappush(heap, (cand[0], cand[1], nbr))
        if b not in dist:
            raise RouteError(f"no route between {a!r} and {b!r}")
        path: list[Link] = []
        node = b
        while node != a:
            parent, link = prev[node]
            path.append(link)
            node = parent
        path.reverse()
        self._route_cache[(a, b)] = path
        self._route_cache[(b, a)] = list(reversed(path))
        return path

    def path_latency(self, a: str, b: str) -> float:
        """Sum of link latencies along the route.

        Cached per pair (latencies are construction-time constants, so the
        sum never changes while the topology stands; ``connect`` clears it).
        """
        cached = self._latency_cache.get((a, b))
        if cached is not None:
            return cached
        latency = sum(link.latency_s for link in self.route(a, b))
        self._latency_cache[(a, b)] = latency
        self._latency_cache[(b, a)] = latency
        return latency

    def pair_bandwidth_table(
        self, a: str, b: str, n: int, flows: dict[str, int] | None = None
    ) -> tuple[np.ndarray, float] | None:
        """Per-epoch bottleneck bandwidth table for the ``a``→``b`` route.

        Array-export hook for the vectorised executor: stacks every route
        link's :meth:`~repro.sim.link.Link.bandwidth_table` (at its flow
        count from ``flows``) and min-reduces across links with NumPy, so
        element ``k`` is exactly the ``min(...)`` bottleneck the reference
        executor computes at any instant inside epoch ``k`` (min is exact —
        no rounding — hence order-free and bit-identical).

        Returns ``(table, dt)`` or ``None`` when the route cannot be
        compiled to a single epoch grid: no links (local), a mutable
        (non-:func:`~repro.sim.load.epoch_cached`) link load, or mixed
        epoch lengths along the route.
        """
        links = self.route(a, b)
        if not links:
            return None
        flows = flows or {}
        if any(not epoch_cached(link.load) for link in links):
            return None
        dts = {link.load.dt for link in links}
        if len(dts) != 1:
            return None
        tables = [
            link.bandwidth_table(n, max(1, flows.get(link.name, 1)))
            for link in links
        ]
        return np.minimum.reduce(tables), dts.pop()

    def path_bandwidth(self, a: str, b: str, t: float = 0.0, flows: int = 1) -> float:
        """Bottleneck deliverable bandwidth (bytes/s) along the route at ``t``.

        Returns ``inf`` for local (same-node) communication.
        """
        links = self.route(a, b)
        if not links:
            return float("inf")
        return min(link.deliverable_bandwidth(t, flows) for link in links)

    def transfer_time(self, a: str, b: str, nbytes: float, t: float = 0.0, flows: int = 1) -> float:
        """Seconds to move ``nbytes`` from ``a`` to ``b`` starting at ``t``.

        Store-and-forward effects are ignored (messages here are large
        relative to per-hop buffers): time = path latency + bytes over the
        bottleneck bandwidth.  Local transfers are free.
        """
        nbytes = check_nonnegative("nbytes", nbytes)
        links = self.route(a, b)
        if not links:
            return 0.0
        bw = min(link.deliverable_bandwidth(t, flows) for link in links)
        if bw <= 0.0:
            return float("inf")
        return self.path_latency(a, b) + nbytes / bw

    def same_segment(self, a: str, b: str) -> bool:
        """True if hosts ``a`` and ``b`` share a direct broadcast segment."""
        hubs_a = {nbr for nbr, _ in self._adj.get(a, ()) if nbr.startswith("seg:")}
        hubs_b = {nbr for nbr, _ in self._adj.get(b, ()) if nbr.startswith("seg:")}
        return bool(hubs_a & hubs_b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(hosts={len(self.hosts)}, nodes={len(self._nodes)}, "
            f"links={len(self.links)})"
        )

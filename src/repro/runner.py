"""Parallel experiment execution.

Every figure of the reproduction is an average over many independent trial
units — (problem size × repeat), (load family × forecaster), (strategy ×
world).  The drivers in :mod:`repro.experiments` express those units as
:class:`Task` lists and hand them to a :class:`ParallelRunner`, which fans
them out over a :mod:`concurrent.futures` process pool.

**Determinism is the contract.**  A task's result depends only on its
function and keyword arguments, never on which worker ran it or in what
order: tasks rebuild their world (testbed, NWS, load traces) from explicit
seeds and simulated instants, all of which are deterministic functions of
``(seed, time)`` (see :mod:`repro.util.rng` and
:mod:`repro.sim.warmcache`).  Results are returned in task order.  Running
with ``workers=1`` executes the same task functions in-process, so serial
and parallel runs of an experiment produce bit-identical tables — the
equivalence tests assert exactly that.

Tasks that need an independent random stream derive it with
:func:`repro.util.rng.derive_seed` from the experiment's master seed and
the task key, so adding, removing or reordering tasks never shifts another
task's stream.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.obs.trace import Tracer, get_tracer, set_tracer
from repro.util.rng import derive_seed

__all__ = ["Task", "ParallelRunner", "resolve_workers", "run_tasks", "derive_seed"]


def resolve_workers(workers: int | None) -> int:
    """Normalise a ``--workers`` value.

    ``None`` and ``0`` mean serial (1); a negative count means "all CPUs".
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers == 0:
        return 1
    if workers < 0:
        return max(1, os.cpu_count() or 1)
    return workers


@dataclass(frozen=True)
class Task:
    """One independent trial unit.

    Attributes
    ----------
    fn:
        A module-level callable (it must be picklable for the process
        pool).
    kwargs:
        Keyword arguments; must themselves be picklable.
    key:
        Identifying tuple, e.g. ``(n, repeat)`` — used for labels,
        debugging and per-task seed derivation.
    """

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    key: tuple = ()

    def __call__(self) -> Any:
        return self.fn(**self.kwargs)


def _invoke(fn: Callable[..., Any], kwargs: Mapping[str, Any]) -> Any:
    """Top-level trampoline so submitted work pickles cleanly."""
    return fn(**kwargs)


def _invoke_traced(fn: Callable[..., Any], kwargs: Mapping[str, Any]) -> tuple[Any, list[dict]]:
    """Trampoline for traced runs: a fresh tracer per worker invocation.

    The worker's records (spans, events, metric dump — all plain dicts,
    so they pickle) travel back with the result; the parent folds them
    into its tracer in task order, so the merged trace is deterministic
    regardless of which worker ran what.  The task's own result is
    untouched — tracing on/off stays bit-identical.
    """
    worker_tracer = Tracer()
    previous = get_tracer()
    set_tracer(worker_tracer)
    try:
        result = fn(**kwargs)
    finally:
        set_tracer(previous)
    return result, worker_tracer.records()


class ParallelRunner:
    """Execute a task list serially or over a process pool.

    Parameters
    ----------
    workers:
        Worker process count after :func:`resolve_workers`; ``1`` runs
        in-process (no pool, no pickling).
    min_parallel_tasks:
        Smallest task count worth a process pool.  Below it the runner
        executes serially even when ``workers > 1``: pool spawn + pickling
        costs a fixed few hundred milliseconds, which short task lists
        (e.g. a quick-mode experiment of 3 sizes on a small box) cannot
        amortise — the Figure 6 quick benchmark *regressed* under
        ``workers=2`` for exactly this reason.  Determinism is unaffected;
        serial and parallel execution are bit-identical by contract.
    persistent:
        Keep one process pool alive across :meth:`run` / :meth:`submit`
        calls instead of spawning and tearing one down per batch.  This
        is the long-lived-service mode (the scheduling daemon dispatches
        a micro-batch every few milliseconds; per-batch pool spawn would
        dwarf the work).  A persistent runner must be :meth:`close`\\ d —
        or used as a context manager — when its owner shuts down.
        ``min_parallel_tasks`` does not apply to :meth:`submit`, whose
        single-task latency is the point.

    Examples
    --------
    >>> def square(x):
    ...     return x * x
    >>> ParallelRunner(workers=1).run([Task(square, {"x": k}) for k in range(4)])
    [0, 1, 4, 9]
    """

    def __init__(
        self,
        workers: int | None = 1,
        min_parallel_tasks: int = 4,
        persistent: bool = False,
    ) -> None:
        if min_parallel_tasks < 2:
            raise ValueError("min_parallel_tasks must be >= 2")
        self.workers = resolve_workers(workers)
        self.min_parallel_tasks = min_parallel_tasks
        self.persistent = bool(persistent)
        self._pool: ProcessPoolExecutor | None = None

    def _executor(self, width: int) -> ProcessPoolExecutor:
        """A pool of ``width`` workers — the shared one when persistent."""
        if self.persistent:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool
        return ProcessPoolExecutor(max_workers=width)

    def close(self) -> None:
        """Shut the persistent pool down (no-op otherwise; idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def submit(self, task: Task) -> Future:
        """Dispatch one task asynchronously; returns a future of its result.

        The long-lived-service primitive: a serial runner executes the
        task inline and returns an already-resolved future, so callers
        write one code path; a parallel runner submits to the (persistent,
        when so configured) pool.  Under an enabled tracer, pool tasks run
        through :func:`_invoke_traced` and their records are absorbed into
        the parent tracer when the future's result is collected — results
        stay bit-identical either way.
        """
        if self.workers <= 1:
            future: Future = Future()
            try:
                future.set_result(task())
            except BaseException as exc:  # mirror executor semantics
                future.set_exception(exc)
            return future
        tracer = get_tracer()
        pool = self._executor(self.workers)
        if not tracer.enabled:
            return pool.submit(_invoke, task.fn, dict(task.kwargs))
        inner = pool.submit(_invoke_traced, task.fn, dict(task.kwargs))
        outer: Future = Future()

        def _absorb(done: Future) -> None:
            try:
                result, records = done.result()
            except BaseException as exc:
                outer.set_exception(exc)
                return
            with tracer.span(
                "runner.task", layer="runner",
                key=str(task.key), fn=getattr(task.fn, "__name__", str(task.fn)),
            ) as span:
                tracer.absorb(records, parent=span.id)
            outer.set_result(result)

        inner.add_done_callback(_absorb)
        return outer

    def run(self, tasks: Iterable[Task], prime: Callable[[], Any] | None = None) -> list[Any]:
        """Run every task; results come back in task order.

        A task raising propagates the exception (after the pool finishes
        or cancels the rest), matching the serial behaviour closely enough
        for experiment drivers.

        ``prime``, if given, is called once in the parent before the pool
        spawns.  Where worker processes are forked (Linux), state it
        builds — typically the warm-state cache — is inherited
        copy-on-write by every worker instead of being rebuilt per
        worker.  It is never called on the serial path, where the first
        task builds the same state itself.
        """
        tasks = list(tasks)
        tracer = get_tracer()
        serial = self.workers <= 1 or len(tasks) < self.min_parallel_tasks
        if not tracer.enabled:
            if serial:
                return [task() for task in tasks]
            if prime is not None:
                prime()
            pool = self._executor(min(self.workers, len(tasks)))
            try:
                futures = [pool.submit(_invoke, task.fn, dict(task.kwargs)) for task in tasks]
                return [future.result() for future in futures]
            finally:
                if not self.persistent:
                    pool.shutdown(wait=True)
        return self._run_traced(tracer, tasks, prime, serial)

    def _run_traced(
        self,
        tracer: Tracer,
        tasks: list[Task],
        prime: Callable[[], Any] | None,
        serial: bool,
    ) -> list[Any]:
        """Traced twin of :meth:`run`: same execution, plus runner spans.

        Serial tasks run inside the parent's tracer directly; pool tasks
        run under :func:`_invoke_traced` and their records are absorbed in
        task order, so the merged trace does not depend on worker timing.
        """
        tracer.metrics.counter("runner.batches").inc()
        tracer.metrics.counter("runner.tasks").inc(len(tasks))
        with tracer.span(
            "runner.batch", layer="runner", tasks=len(tasks),
            workers=1 if serial else min(self.workers, len(tasks)),
            mode="serial" if serial else "pool",
        ):
            if serial:
                results = []
                for idx, task in enumerate(tasks):
                    with tracer.span(
                        "runner.task", layer="runner", index=idx,
                        key=str(task.key), fn=getattr(task.fn, "__name__", str(task.fn)),
                    ):
                        results.append(task())
                return results
            if prime is not None:
                prime()
            pool = self._executor(min(self.workers, len(tasks)))
            try:
                futures = [
                    pool.submit(_invoke_traced, task.fn, dict(task.kwargs)) for task in tasks
                ]
                results = []
                for idx, (task, future) in enumerate(zip(tasks, futures)):
                    result, records = future.result()
                    with tracer.span(
                        "runner.task", layer="runner", index=idx,
                        key=str(task.key), fn=getattr(task.fn, "__name__", str(task.fn)),
                    ) as span:
                        tracer.absorb(records, parent=span.id)
                    results.append(result)
                return results
            finally:
                if not self.persistent:
                    pool.shutdown(wait=True)

    def map(self, fn: Callable[..., Any], kwargs_list: Sequence[Mapping[str, Any]]) -> list[Any]:
        """Shorthand: run ``fn`` once per kwargs mapping, preserving order."""
        return self.run([Task(fn, kwargs) for kwargs in kwargs_list])


def run_tasks(tasks: Iterable[Task], workers: int | None = 1) -> list[Any]:
    """Convenience wrapper: ``ParallelRunner(workers).run(tasks)``."""
    return ParallelRunner(workers).run(tasks)

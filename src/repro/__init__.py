"""AppLeS: application-level scheduling for metacomputing systems.

A full reproduction of Berman & Wolski, *Scheduling from the Perspective
of the Application* (HPDC 1996): the AppLeS agent architecture
(:mod:`repro.core`), the Network Weather Service it draws forecasts from
(:mod:`repro.nws`), a simulated heterogeneous metacomputer standing in for
the 1996 SDSC/PCL testbed (:mod:`repro.sim`), and the paper's three
applications — Jacobi2D (:mod:`repro.jacobi`), 3D-REACT
(:mod:`repro.react`) and CLEO/NILE event analysis (:mod:`repro.nile`).

Quickstart
----------
>>> from repro.sim import sdsc_pcl_testbed
>>> from repro.nws import NetworkWeatherService
>>> from repro.jacobi import JacobiProblem, make_jacobi_agent
>>> testbed = sdsc_pcl_testbed(seed=1996)
>>> nws = NetworkWeatherService.for_testbed(testbed)
>>> nws.warmup(600.0)
>>> agent = make_jacobi_agent(testbed, JacobiProblem(n=1000), nws)
>>> decision = agent.schedule()
>>> decision.best.decomposition
'apples-strip'
"""

from repro.core.coordinator import AppLeSAgent, ScheduleDecision
from repro.core.hat import HeterogeneousApplicationTemplate
from repro.core.infopool import InformationPool
from repro.core.resources import ResourcePool
from repro.core.schedule import Allocation, Schedule
from repro.core.userspec import UserSpecification
from repro.nws.service import NetworkWeatherService
from repro.sim.testbeds import (
    Testbed,
    casa_testbed,
    nile_testbed,
    sdsc_pcl_testbed,
    sdsc_pcl_with_sp2,
)

__version__ = "1.0.0"

__all__ = [
    "AppLeSAgent",
    "ScheduleDecision",
    "HeterogeneousApplicationTemplate",
    "InformationPool",
    "ResourcePool",
    "Schedule",
    "Allocation",
    "UserSpecification",
    "NetworkWeatherService",
    "Testbed",
    "sdsc_pcl_testbed",
    "sdsc_pcl_with_sp2",
    "casa_testbed",
    "nile_testbed",
    "__version__",
]

"""A data-parallel AppLeS agent for NILE event analysis.

CLEO/NILE is the paper's data-parallel exemplar: independent events,
expensive data movement, heterogeneous non-dedicated workers.  The planner
places event shares on candidate hosts with each host's effective rate
discounted by the cost of streaming its share from the data host — so the
schedule naturally concentrates work near the data ("Movement of data is
expensive and often neither desirable nor feasible", §2.1), spilling to
remote sites only when their compute advantage beats the shipping cost.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.coordinator import AppLeSAgent
from repro.core.hat import (
    CommunicationCharacteristics,
    HeterogeneousApplicationTemplate,
    StructureInfo,
    TaskCharacteristics,
)
from repro.core.infopool import InformationPool
from repro.core.planner import balance_divisible_work
from repro.core.resources import ResourcePool
from repro.core.schedule import Allocation, Schedule
from repro.core.selector import ResourceSelector
from repro.core.userspec import UserSpecification
from repro.nile.analysis import AnalysisProgram
from repro.nile.storage import StoredDataset
from repro.nws.service import NetworkWeatherService
from repro.sim.testbeds import Testbed

__all__ = ["NileAnalysisPlanner", "nile_hat", "make_nile_agent"]


def nile_hat(dataset: StoredDataset, program: AnalysisProgram) -> HeterogeneousApplicationTemplate:
    """HAT for one event-analysis job over one dataset."""
    return HeterogeneousApplicationTemplate(
        name=f"nile:{program.name}:{dataset.name}",
        paradigm="data-parallel",
        tasks=(
            TaskCharacteristics(
                name="event-analysis",
                flop_per_unit=program.mflop_per_event,
                bytes_per_unit=float(dataset.events.fmt.bytes_per_event),
                divisible=True,
            ),
        ),
        communication=CommunicationCharacteristics(pattern="gather"),
        structure=StructureInfo(
            total_units=float(dataset.nevents),
            iterations=1,
            io_bytes=float(dataset.size_bytes),
            unifying_structure="event-stream",
        ),
    )


class NileAnalysisPlanner:
    """Place an analysis over a candidate host set, data-locality aware."""

    def __init__(self, dataset: StoredDataset, program: AnalysisProgram) -> None:
        self.dataset = dataset
        self.program = program

    def plan(self, resource_set: Sequence[str], info: InformationPool) -> Schedule | None:
        bytes_per_event = self.dataset.events.fmt.bytes_per_event
        rates: list[float] = []
        usable: list[str] = []
        for h in resource_set:
            speed = info.pool.predicted_speed(h)
            if speed <= 0:
                continue
            per_event = self.program.mflop_per_event / speed
            if h != self.dataset.host:
                bw = info.pool.predicted_bandwidth(self.dataset.host, h)
                if bw <= 0:
                    continue
                per_event += bytes_per_event / bw
            rates.append(1.0 / per_event)
            usable.append(h)
        if not usable:
            return None
        result = balance_divisible_work(
            rates, [0.0] * len(usable), float(self.dataset.nevents)
        )
        if result is None:
            return None
        access = self.dataset.read_time()
        allocations = []
        for h, units in zip(usable, result.allocations):
            if units <= 0:
                continue
            comm = (
                {self.dataset.host: units * bytes_per_event}
                if h != self.dataset.host
                else {}
            )
            allocations.append(
                Allocation(
                    machine=h,
                    task="event-analysis",
                    work_units=units,
                    comm_bytes=comm,
                )
            )
        if not allocations:
            return None
        return Schedule(
            allocations=allocations,
            predicted_time=access + result.makespan,
            decomposition="event-parallel",
            metadata={
                "dataset": self.dataset.name,
                "program": self.program.name,
                "access_s": access,
                "compute_s": result.makespan,
            },
        )


def make_nile_agent(
    testbed: Testbed,
    dataset: StoredDataset,
    program: AnalysisProgram,
    nws: NetworkWeatherService | None = None,
    userspec: UserSpecification | None = None,
) -> AppLeSAgent:
    """Assemble an event-analysis AppLeS agent.

    The default User Specification applies the paper's NILE constraint:
    every processor must run a CORBA ORB (§3.5).
    """
    pool = ResourcePool(testbed.topology, nws)
    us = userspec if userspec is not None else UserSpecification(
        required_capabilities=frozenset({"corba-orb"})
    )
    info = InformationPool(pool=pool, hat=nile_hat(dataset, program), userspec=us)
    planner = NileAnalysisPlanner(dataset, program)
    return AppLeSAgent(info, planner=planner, selector=ResourceSelector())

"""Synthetic CLEO-style event data.

The paper gives concrete record sizes: raw events are "typically 8K
bytes/event"; *pass2* reconstruction produces "20K bytes/event"; *roar* is
a "lossily-compressed version of certain frequently-accessed fields".  We
generate seeded synthetic events carrying physically-flavoured features
(total energy, charged/neutral multiplicities, an is-signal tag) so the
analysis programs do real array work, while sizes follow the paper's
numbers for all storage/transfer cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import spawn_rng
from repro.util.validation import check_positive

__all__ = ["RecordFormat", "RAW", "PASS2", "ROAR", "EventBatch"]


@dataclass(frozen=True)
class RecordFormat:
    """One of the CLEO record formats.

    Parameters
    ----------
    name:
        Format tag (``raw``, ``pass2``, ``roar``).
    bytes_per_event:
        Storage per event.
    fields:
        Feature names available in this format (roar keeps only the
        frequently-accessed subset).
    lossy:
        Whether the format discards information.
    """

    name: str
    bytes_per_event: int
    fields: tuple[str, ...]
    lossy: bool = False

    def __post_init__(self) -> None:
        check_positive("bytes_per_event", self.bytes_per_event)
        if not self.fields:
            raise ValueError("a record format needs at least one field")


#: All features the detector + pass2 produce.
_ALL_FIELDS = (
    "energy_gev",
    "charged_multiplicity",
    "neutral_multiplicity",
    "vertex_chi2",
    "is_signal",
)

RAW = RecordFormat("raw", 8_192, _ALL_FIELDS[:3])
PASS2 = RecordFormat("pass2", 20_480, _ALL_FIELDS)
ROAR = RecordFormat(
    "roar", 2_048, ("energy_gev", "charged_multiplicity", "is_signal"), lossy=True
)

_FORMATS = {f.name: f for f in (RAW, PASS2, ROAR)}


def format_by_name(name: str) -> RecordFormat:
    """Look up a record format by tag."""
    try:
        return _FORMATS[name]
    except KeyError:
        raise KeyError(f"unknown record format {name!r} (have {sorted(_FORMATS)})") from None


class EventBatch:
    """A seeded batch of synthetic collision events.

    Feature arrays are generated lazily (analyses over a million events
    should not pay generation cost until they actually read the fields)
    and cached; the same ``(nevents, seed)`` always yields the same data.

    Parameters
    ----------
    nevents:
        Number of events.
    fmt:
        The record format (controls available fields and bytes).
    seed:
        Generation seed.
    signal_fraction:
        Fraction of events tagged as signal (the rare physics CLEO's
        anti-matter question chases).
    """

    def __init__(
        self,
        nevents: int,
        fmt: RecordFormat = PASS2,
        seed: int = 0,
        signal_fraction: float = 0.002,
    ) -> None:
        check_positive("nevents", nevents)
        if not (0.0 <= signal_fraction <= 1.0):
            raise ValueError(f"signal_fraction must be in [0, 1], got {signal_fraction}")
        self.nevents = int(nevents)
        self.fmt = fmt
        self.seed = int(seed)
        self.signal_fraction = float(signal_fraction)
        self._cache: dict[str, np.ndarray] = {}

    @property
    def size_bytes(self) -> int:
        """Total stored size of the batch."""
        return self.nevents * self.fmt.bytes_per_event

    def field(self, name: str) -> np.ndarray:
        """One feature array (generated on first access)."""
        if name not in self.fmt.fields:
            raise KeyError(
                f"format {self.fmt.name!r} does not carry field {name!r} "
                f"(has {self.fmt.fields})"
            )
        if name not in self._cache:
            self._generate(name)
        return self._cache[name]

    def features(self) -> dict[str, np.ndarray]:
        """All fields of this format as a dict of arrays."""
        return {name: self.field(name) for name in self.fmt.fields}

    def _generate(self, name: str) -> None:
        rng = spawn_rng(self.seed, f"events:{name}")
        n = self.nevents
        if name == "energy_gev":
            # CESR ran near the Υ(4S): ~10.58 GeV centre-of-mass with
            # detector smearing.
            self._cache[name] = rng.normal(10.58, 0.35, size=n)
        elif name == "charged_multiplicity":
            self._cache[name] = rng.poisson(10.0, size=n).astype(np.int64)
        elif name == "neutral_multiplicity":
            self._cache[name] = rng.poisson(6.0, size=n).astype(np.int64)
        elif name == "vertex_chi2":
            self._cache[name] = rng.chisquare(4.0, size=n)
        elif name == "is_signal":
            self._cache[name] = rng.random(n) < self.signal_fraction
        else:  # pragma: no cover - formats only list known fields
            raise KeyError(f"unknown field {name!r}")

    def slice(self, start: int, stop: int) -> "EventBatch":
        """A view-like sub-batch (re-generates the same values by seeding).

        Used by the data-parallel runtime to hand each worker its share;
        the sub-batch materialises the parent's arrays sliced, so numeric
        results of split analyses equal whole-batch analyses exactly.
        """
        if not (0 <= start <= stop <= self.nevents):
            raise ValueError(f"invalid slice [{start}, {stop}) of {self.nevents} events")
        sub = EventBatch(max(stop - start, 1), self.fmt, self.seed, self.signal_fraction)
        if stop == start:
            raise ValueError("empty slice")
        sub.nevents = stop - start
        for name in self.fmt.fields:
            sub._cache[name] = self.field(name)[start:stop]
        return sub

    def to_format(self, fmt: RecordFormat, seed_offset: int = 0) -> "EventBatch":
        """Re-encode the batch in another format (e.g. skim pass2 → roar).

        Shared fields carry over exactly; fields the target format adds are
        generated from the batch seed (a stand-in for recomputation).
        """
        out = EventBatch(self.nevents, fmt, self.seed + seed_offset, self.signal_fraction)
        for name in fmt.fields:
            if name in self.fmt.fields:
                out._cache[name] = self.field(name)
        return out

"""Distributed execution of NILE event analyses.

The counterpart of :mod:`repro.jacobi.runtime` for the data-parallel
application: given a schedule from the NILE agent, this runtime

- **numerically** executes the analysis — each host's share of events is
  really analysed with the program's NumPy code and the partials merged,
  so the distributed answer is asserted identical to the single-site
  answer; and
- **in simulated time** charges the compute and the data movement each
  share implies (tier read at the data host, per-share WAN transfer,
  per-host compute under live availability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.schedule import Schedule
from repro.nile.analysis import AnalysisProgram, CullAnalysis
from repro.nile.storage import StoredDataset
from repro.sim.topology import Topology
from repro.util.validation import check_nonnegative

__all__ = ["AnalysisRunResult", "execute_analysis"]


@dataclass(frozen=True)
class AnalysisRunResult:
    """Outcome of one distributed analysis run.

    Attributes
    ----------
    result:
        The merged analysis result (histogram, moments, indices...).
    elapsed_s:
        Simulated wall-clock: tier access + the slowest host's
        (transfer + compute) path.
    host_times:
        Per-host (transfer + compute) seconds.
    shares:
        Events analysed per host, in schedule order.
    """

    result: Any
    elapsed_s: float
    host_times: dict[str, float]
    shares: dict[str, int]


def _integer_shares(schedule: Schedule, nevents: int) -> dict[str, int]:
    """Round the schedule's fractional event shares to integers summing to
    ``nevents`` (largest remainder; drift lands on the biggest share)."""
    raw = {a.machine: a.work_units for a in schedule.allocations}
    shares = {m: int(u) for m, u in raw.items()}
    drift = nevents - sum(shares.values())
    order = sorted(raw, key=lambda m: raw[m] - shares[m], reverse=True)
    i = 0
    while drift > 0:
        shares[order[i % len(order)]] += 1
        drift -= 1
        i += 1
    while drift < 0:
        big = max(shares, key=shares.get)  # type: ignore[arg-type]
        shares[big] -= 1
        drift += 1
    return {m: c for m, c in shares.items() if c > 0}


def execute_analysis(
    topology: Topology,
    schedule: Schedule,
    dataset: StoredDataset,
    program: AnalysisProgram,
    t0: float = 0.0,
) -> AnalysisRunResult:
    """Run an event-analysis schedule: real numerics, simulated time.

    Events are assigned to hosts in schedule order as contiguous slices
    (the order is part of the schedule, so re-running it reproduces the
    same partials).  Offsets are threaded into index-producing analyses
    (:class:`~repro.nile.analysis.CullAnalysis`) so merged indices are
    global.
    """
    check_nonnegative("t0", t0)
    shares = _integer_shares(schedule, dataset.nevents)
    if sum(shares.values()) != dataset.nevents:
        raise ValueError("shares do not cover the dataset")

    access = dataset.read_time()
    bytes_per_event = dataset.events.fmt.bytes_per_event
    partials = []
    host_times: dict[str, float] = {}
    offset = 0
    for alloc in schedule.allocations:
        host = alloc.machine
        count = shares.get(host, 0)
        if count <= 0:
            continue
        batch = dataset.events.slice(offset, offset + count)
        if isinstance(program, CullAnalysis):
            partials.append(program.run_offset(batch, offset))
        else:
            partials.append(program.run(batch))

        transfer = (
            topology.transfer_time(dataset.host, host, count * bytes_per_event,
                                   t0 + access)
            if host != dataset.host
            else 0.0
        )
        machine = topology.host(host)
        compute = machine.time_to_compute(
            program.total_mflop(count), t0 + access + transfer
        )
        host_times[host] = transfer + compute
        offset += count

    merged = program.merge(partials)
    elapsed = access + (max(host_times.values()) if host_times else 0.0)
    return AnalysisRunResult(
        result=merged,
        elapsed_s=elapsed,
        host_times=host_times,
        shares=shares,
    )

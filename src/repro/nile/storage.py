"""Storage tiers and stored datasets.

"The *roar* data is kept on disk while the rest of the data must be kept
on tape" (§2.1).  Tape is the interesting tier: huge capacity, painful
mount latency, modest streaming bandwidth — the physical reason skimming
a working set onto local disk can pay for itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nile.events import EventBatch
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["StorageTier", "DISK", "TAPE", "StoredDataset"]


@dataclass(frozen=True)
class StorageTier:
    """A storage class with streaming bandwidth and access latency."""

    name: str
    bandwidth_mbps: float  # MB/s (10^6 bytes per second)
    access_latency_s: float

    def __post_init__(self) -> None:
        check_positive("bandwidth_mbps", self.bandwidth_mbps)
        check_nonnegative("access_latency_s", self.access_latency_s)

    def read_time(self, nbytes: float) -> float:
        """Seconds to stream ``nbytes`` off this tier (one access)."""
        check_nonnegative("nbytes", nbytes)
        if nbytes == 0:
            return 0.0
        return self.access_latency_s + nbytes / (self.bandwidth_mbps * 1e6)

    def write_time(self, nbytes: float) -> float:
        """Seconds to stream ``nbytes`` onto this tier (symmetric model)."""
        return self.read_time(nbytes)


#: Mid-1990s local disk: ~8 MB/s sustained, negligible positioning time at
#: this granularity.
DISK = StorageTier("disk", bandwidth_mbps=8.0, access_latency_s=0.02)

#: Robotic tape: minutes of mount/seek, then a few MB/s streaming.
TAPE = StorageTier("tape", bandwidth_mbps=3.0, access_latency_s=45.0)


@dataclass
class StoredDataset:
    """An event batch resident on a tier at a host.

    Parameters
    ----------
    name:
        Dataset identifier (e.g. ``"run4-pass2"``).
    events:
        The event batch.
    tier:
        Where it lives (:data:`DISK` or :data:`TAPE`).
    host:
        Name of the host (in the topology) serving this data.
    """

    name: str
    events: EventBatch
    tier: StorageTier
    host: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dataset name must be non-empty")
        if not self.host:
            raise ValueError("dataset host must be non-empty")

    @property
    def size_bytes(self) -> int:
        """Stored size."""
        return self.events.size_bytes

    @property
    def nevents(self) -> int:
        """Number of events."""
        return self.events.nevents

    def read_time(self) -> float:
        """Seconds to stream the whole dataset off its tier."""
        return self.tier.read_time(self.size_bytes)

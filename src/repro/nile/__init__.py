"""CLEO/NILE: the paper's data-parallel metacomputer application (§2.1).

CLEO physicists analyse collision *events* (8 KB raw records; 20 KB after
the offline *pass2* reconstruction; a lossily-compressed *roar* format for
the frequently-accessed fields).  NILE is the scalable infrastructure for
distributed storage and analysis of that data; its Site Manager mediates
analysis requests, and "the cost of skimming is compared with a prediction
of the reduction in cost of event analysis when the data is local".

This subpackage provides the synthetic substitute for the CLEO data and
the NILE decision structure:

- :mod:`repro.nile.events` — seeded synthetic event batches in the three
  record formats,
- :mod:`repro.nile.storage` — disk/tape tiers and stored datasets,
- :mod:`repro.nile.analysis` — runnable data-parallel analysis programs
  (histogram, statistics, cull),
- :mod:`repro.nile.site_manager` — the Site Manager with the
  skim-vs-remote cost comparison,
- :mod:`repro.nile.apples` — a data-parallel scheduling agent that places
  event analysis near the data.
"""

from repro.nile.analysis import (
    AnalysisProgram,
    CullAnalysis,
    HistogramAnalysis,
    StatisticsAnalysis,
)
from repro.nile.apples import NileAnalysisPlanner, make_nile_agent
from repro.nile.events import PASS2, RAW, ROAR, EventBatch, RecordFormat
from repro.nile.runtime import AnalysisRunResult, execute_analysis
from repro.nile.site_manager import AnalysisCostReport, SiteManager, SkimDecision
from repro.nile.storage import DISK, TAPE, StorageTier, StoredDataset

__all__ = [
    "AnalysisRunResult",
    "execute_analysis",
    "RecordFormat",
    "RAW",
    "PASS2",
    "ROAR",
    "EventBatch",
    "StorageTier",
    "DISK",
    "TAPE",
    "StoredDataset",
    "AnalysisProgram",
    "HistogramAnalysis",
    "StatisticsAnalysis",
    "CullAnalysis",
    "SiteManager",
    "SkimDecision",
    "AnalysisCostReport",
    "NileAnalysisPlanner",
    "make_nile_agent",
]

"""Data-parallel event-analysis programs.

"A physicist may wish to construct a histogram, compute statistics, or
cull the raw data for physical inspection" (§2.1).  Each program here does
real NumPy work over event features *and* declares its computational cost
(MFLOP/event) for the schedulers.  All three are associative: running a
program over event sub-batches and merging gives exactly the whole-batch
answer, which is what makes the analysis data-parallel — the integration
tests assert this merge property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.nile.events import EventBatch
from repro.util.validation import check_positive

__all__ = [
    "AnalysisProgram",
    "HistogramAnalysis",
    "StatisticsAnalysis",
    "CullAnalysis",
]


class AnalysisProgram:
    """Base class: a named analysis with a per-event cost model."""

    #: MFLOP of work per event (drives scheduling); subclasses override.
    mflop_per_event: float = 1.0e-3
    name: str = "analysis"

    def run(self, batch: EventBatch) -> Any:
        """Analyse one batch, returning a mergeable partial result."""
        raise NotImplementedError

    def merge(self, partials: Sequence[Any]) -> Any:
        """Combine partial results from sub-batches."""
        raise NotImplementedError

    def total_mflop(self, nevents: int) -> float:
        """Work for ``nevents`` events."""
        if nevents < 0:
            raise ValueError("nevents must be >= 0")
        return nevents * self.mflop_per_event


@dataclass(frozen=True)
class _Histogram:
    """A mergeable histogram partial."""

    counts: np.ndarray
    edges: np.ndarray


class HistogramAnalysis(AnalysisProgram):
    """Histogram one feature over fixed bin edges."""

    def __init__(
        self,
        field: str = "energy_gev",
        bins: int = 50,
        lo: float = 9.0,
        hi: float = 12.0,
        mflop_per_event: float = 2.0e-3,
    ) -> None:
        check_positive("bins", bins)
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        self.field = field
        self.edges = np.linspace(lo, hi, int(bins) + 1)
        self.mflop_per_event = check_positive("mflop_per_event", mflop_per_event)
        self.name = f"histogram({field})"

    def run(self, batch: EventBatch) -> _Histogram:
        counts, edges = np.histogram(batch.field(self.field), bins=self.edges)
        return _Histogram(counts=counts.astype(np.int64), edges=edges)

    def merge(self, partials: Sequence[_Histogram]) -> _Histogram:
        if not partials:
            raise ValueError("nothing to merge")
        counts = np.sum([p.counts for p in partials], axis=0)
        return _Histogram(counts=counts, edges=partials[0].edges)


@dataclass(frozen=True)
class _Moments:
    """Mergeable count/sum/sum-of-squares for a set of fields."""

    n: int
    sums: dict[str, float]
    sumsq: dict[str, float]

    def mean(self, field: str) -> float:
        return self.sums[field] / self.n if self.n else 0.0

    def std(self, field: str) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean(field)
        var = max(self.sumsq[field] / self.n - m * m, 0.0)
        return float(np.sqrt(var))


class StatisticsAnalysis(AnalysisProgram):
    """Mean/std over a set of fields via mergeable moments."""

    def __init__(
        self,
        fields: Sequence[str] = ("energy_gev", "charged_multiplicity"),
        mflop_per_event: float = 1.5e-3,
    ) -> None:
        if not fields:
            raise ValueError("need at least one field")
        self.fields = tuple(fields)
        self.mflop_per_event = check_positive("mflop_per_event", mflop_per_event)
        self.name = f"statistics({','.join(self.fields)})"

    def run(self, batch: EventBatch) -> _Moments:
        sums = {}
        sumsq = {}
        for f in self.fields:
            arr = np.asarray(batch.field(f), dtype=float)
            sums[f] = float(arr.sum())
            sumsq[f] = float((arr * arr).sum())
        return _Moments(n=batch.nevents, sums=sums, sumsq=sumsq)

    def merge(self, partials: Sequence[_Moments]) -> _Moments:
        if not partials:
            raise ValueError("nothing to merge")
        n = sum(p.n for p in partials)
        sums = {f: sum(p.sums[f] for p in partials) for f in self.fields}
        sumsq = {f: sum(p.sumsq[f] for p in partials) for f in self.fields}
        return _Moments(n=n, sums=sums, sumsq=sumsq)


class CullAnalysis(AnalysisProgram):
    """Select the indices of signal-like events for physical inspection.

    Returns global event indices, so merging across sub-batches needs each
    partial to be offset by its batch start — :meth:`run_offset` does this
    for the data-parallel runtime.
    """

    def __init__(
        self,
        energy_window: tuple[float, float] = (10.2, 10.9),
        min_charged: int = 8,
        mflop_per_event: float = 1.0e-3,
    ) -> None:
        lo, hi = energy_window
        if hi <= lo:
            raise ValueError("energy window must be non-empty")
        self.energy_window = (float(lo), float(hi))
        self.min_charged = int(min_charged)
        self.mflop_per_event = check_positive("mflop_per_event", mflop_per_event)
        self.name = "cull"

    def run(self, batch: EventBatch) -> np.ndarray:
        return self.run_offset(batch, 0)

    def run_offset(self, batch: EventBatch, offset: int) -> np.ndarray:
        lo, hi = self.energy_window
        energy = batch.field("energy_gev")
        charged = batch.field("charged_multiplicity")
        mask = (energy >= lo) & (energy <= hi) & (charged >= self.min_charged)
        if "is_signal" in batch.fmt.fields:
            mask |= batch.field("is_signal")
        return np.flatnonzero(mask) + int(offset)

    def merge(self, partials: Sequence[np.ndarray]) -> np.ndarray:
        if not partials:
            raise ValueError("nothing to merge")
        return np.sort(np.concatenate(list(partials)))

"""The NILE Site Manager.

"Users interact with the NILE system ... through a Site Manager.  The Site
Manager contains specific information about some resources and general
information about other resources through 'proxies'. ... the physicist may
'skim' the entire data set to create private disk data sets of events for
further local analysis.  The cost of skimming is compared with a
prediction of the reduction in cost of event analysis when the data is
local." (§2.1)

The Site Manager here does all three jobs: it *allocates* a data-parallel
analysis across the hosts of a site (time-balanced, like every AppLeS
plan), it *predicts* per-run costs for remote versus skimmed-local data,
and it *decides* whether skimming pays given how many times the physicist
expects to re-run the analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.planner import balance_divisible_work
from repro.core.resources import ResourcePool
from repro.nile.analysis import AnalysisProgram
from repro.nile.events import ROAR, RecordFormat
from repro.nile.storage import DISK, StorageTier, StoredDataset
from repro.util.validation import check_fraction, check_positive

__all__ = ["AnalysisCostReport", "SkimDecision", "SiteManager"]


@dataclass(frozen=True)
class AnalysisCostReport:
    """Predicted cost breakdown for one analysis run at one site."""

    data_access_s: float
    compute_s: float
    hosts: tuple[str, ...]

    @property
    def total_s(self) -> float:
        """Access + compute (access is not overlapped in this model)."""
        return self.data_access_s + self.compute_s


@dataclass(frozen=True)
class SkimDecision:
    """The Site Manager's skim-vs-remote verdict.

    Attributes
    ----------
    skim:
        True when skimming is predicted to pay off.
    skim_cost_s:
        One-time cost of creating the private local dataset.
    remote_run_s / local_run_s:
        Predicted per-run cost against remote vs skimmed-local data.
    crossover_runs:
        Minimum number of repeated analyses at which skimming wins
        (infinity when local runs are no cheaper).
    expected_runs:
        The physicist's estimate the decision used.
    """

    skim: bool
    skim_cost_s: float
    remote_run_s: float
    local_run_s: float
    crossover_runs: float
    expected_runs: int


@dataclass
class SiteManager:
    """Per-site broker for NILE event analysis.

    Parameters
    ----------
    site:
        Name of the site this manager fronts.
    pool:
        Resource pool (topology + optional NWS) — the manager's "specific
        information" about local resources and "proxies" for remote ones.
    datasets:
        Known datasets (local and remote) by name.
    local_disk:
        The tier skims land on.
    """

    site: str
    pool: ResourcePool
    datasets: dict[str, StoredDataset] = field(default_factory=dict)
    local_disk: StorageTier = DISK

    def register(self, dataset: StoredDataset) -> None:
        """Make a dataset known to this manager."""
        if dataset.name in self.datasets:
            raise ValueError(f"duplicate dataset {dataset.name!r}")
        self.datasets[dataset.name] = dataset

    def local_hosts(self) -> list[str]:
        """Hosts belonging to this manager's site."""
        return [
            m.name for m in self.pool.machines() if m.site == self.site
        ]

    # -- allocation --------------------------------------------------------
    def allocate(
        self, dataset: StoredDataset, program: AnalysisProgram, hosts: list[str] | None = None
    ) -> dict[str, int]:
        """Time-balanced split of the dataset's events across site hosts.

        Each host's effective rate folds in the per-event cost of moving
        its share from the data host (free when co-located), so hosts far
        from the data naturally receive fewer events.
        """
        hosts = hosts if hosts is not None else self.local_hosts()
        if not hosts:
            raise RuntimeError(f"site {self.site!r} has no hosts")
        bytes_per_event = dataset.events.fmt.bytes_per_event
        rates = []
        usable = []
        for h in hosts:
            speed = self.pool.predicted_speed(h)
            if speed <= 0:
                continue
            per_event = program.mflop_per_event / speed
            if h != dataset.host:
                bw = self.pool.predicted_bandwidth(dataset.host, h)
                if bw <= 0:
                    continue
                per_event += bytes_per_event / bw
            rates.append(1.0 / per_event)
            usable.append(h)
        if not usable:
            raise RuntimeError("no usable hosts for allocation")
        result = balance_divisible_work(rates, [0.0] * len(usable), dataset.nevents)
        assert result is not None  # no capacities -> always feasible
        shares: dict[str, int] = {}
        assigned = 0
        for h, units in zip(usable, result.allocations):
            count = int(round(units))
            shares[h] = count
            assigned += count
        # Rounding drift lands on the fastest host.
        drift = dataset.nevents - assigned
        if drift:
            fastest = max(usable, key=lambda h: self.pool.predicted_speed(h))
            shares[fastest] += drift
        return {h: c for h, c in shares.items() if c > 0}

    # -- cost prediction -----------------------------------------------------
    def predict_run_cost(
        self, dataset: StoredDataset, program: AnalysisProgram, hosts: list[str] | None = None
    ) -> AnalysisCostReport:
        """Predicted cost of one analysis run against ``dataset``.

        Data access: stream the dataset off its tier, plus WAN transfer of
        the shares consumed away from the data host.  Compute: the
        balanced makespan across the chosen hosts.
        """
        shares = self.allocate(dataset, program, hosts)
        bytes_per_event = dataset.events.fmt.bytes_per_event
        access = dataset.read_time()
        compute = 0.0
        for h, count in shares.items():
            speed = self.pool.predicted_speed(h)
            t = program.total_mflop(count) / speed
            if h != dataset.host:
                t += self.pool.predicted_transfer_time(
                    dataset.host, h, count * bytes_per_event
                )
            compute = max(compute, t)
        return AnalysisCostReport(
            data_access_s=access, compute_s=compute, hosts=tuple(shares)
        )

    def predict_skim_cost(
        self,
        dataset: StoredDataset,
        skim_fraction: float,
        target_host: str,
        target_format: RecordFormat = ROAR,
    ) -> float:
        """One-time cost of skimming ``skim_fraction`` of a dataset to disk
        at ``target_host``: read the source tier, ship the selected events,
        write the (possibly re-encoded) records locally."""
        check_fraction("skim_fraction", skim_fraction)
        selected = dataset.nevents * skim_fraction
        read = dataset.read_time()  # a skim scans the whole dataset
        ship = self.pool.predicted_transfer_time(
            dataset.host, target_host, selected * dataset.events.fmt.bytes_per_event
        )
        write = self.local_disk.write_time(selected * target_format.bytes_per_event)
        return read + ship + write

    # -- multi-dataset analysis ----------------------------------------------
    def plan_multi_dataset(
        self,
        datasets: list[StoredDataset],
        program: AnalysisProgram,
    ) -> dict[str, dict[str, int]]:
        """Allocate an analysis spanning several datasets at several sites.

        "Distribution is necessary because not enough resources can be made
        available at any single site to accommodate the quantity of data"
        (§2.1) — so NILE "implements the program at the data site(s)".
        Each dataset's events are allocated among the hosts of *its own
        site* (co-located compute; only partial results travel).  Returns
        dataset-name → host → event count.
        """
        if not datasets:
            raise ValueError("need at least one dataset")
        plans: dict[str, dict[str, int]] = {}
        for ds in datasets:
            site = self.pool.machine_info(ds.host).site
            hosts = [m.name for m in self.pool.machines() if m.site == site]
            if not hosts:
                raise RuntimeError(f"no hosts at site {site!r} for {ds.name!r}")
            plans[ds.name] = self.allocate(ds, program, hosts=hosts)
        return plans

    def predict_multi_dataset_cost(
        self,
        datasets: list[StoredDataset],
        program: AnalysisProgram,
    ) -> float:
        """Predicted wall clock of a multi-site analysis.

        Sites proceed concurrently; the answer arrives when the slowest
        site finishes (partial-result shipping is negligible next to event
        data and is ignored, as the paper's aggregation-phase framing
        implies).
        """
        worst = 0.0
        for ds in datasets:
            site = self.pool.machine_info(ds.host).site
            hosts = [m.name for m in self.pool.machines() if m.site == site]
            report = self.predict_run_cost(ds, program, hosts=hosts)
            worst = max(worst, report.total_s)
        return worst

    # -- the decision ---------------------------------------------------------
    def decide_skim(
        self,
        dataset: StoredDataset,
        program: AnalysisProgram,
        expected_runs: int,
        skim_fraction: float = 1.0,
        target_host: str | None = None,
        target_format: RecordFormat = ROAR,
    ) -> SkimDecision:
        """The §2.1 comparison: skim once + analyse locally, or analyse
        remotely every time.

        ``skim_fraction`` < 1 models physicists who cut the dataset down to
        their private working set as they skim.
        """
        check_positive("expected_runs", expected_runs)
        if target_host is None:
            hosts = self.local_hosts()
            if not hosts:
                raise RuntimeError(f"site {self.site!r} has no hosts")
            target_host = max(hosts, key=lambda h: self.pool.predicted_speed(h))

        remote = self.predict_run_cost(dataset, program).total_s
        skim_cost = self.predict_skim_cost(
            dataset, skim_fraction, target_host, target_format
        )
        nlocal = max(int(dataset.nevents * skim_fraction), 1)
        local_ds = StoredDataset(
            name=f"{dataset.name}-skim",
            events=dataset.events.slice(0, nlocal).to_format(target_format),
            tier=self.local_disk,
            host=target_host,
        )
        local = self.predict_run_cost(local_ds, program).total_s

        saving = remote - local
        crossover = skim_cost / saving if saving > 0 else math.inf
        return SkimDecision(
            skim=expected_runs >= crossover,
            skim_cost_s=skim_cost,
            remote_run_s=remote,
            local_run_s=local,
            crossover_runs=crossover,
            expected_runs=int(expected_runs),
        )

"""METRIC-A6: distinct users optimise distinct metrics (§3.1).

"Moreover, distinct users will attempt to optimize their usage of same
metacomputing resources for different performance criteria at the same
time.  For individual applications, the best scheduling strategy will
optimize the user's own performance metric."

Three users submit the *same* Jacobi2D job to the *same* metacomputer,
differing only in their User Specifications:

- the **time** user minimises execution time (the §5 metric),
- the **cost** user pays per CPU-second (supercomputer-centre rates make
  the SDSC Alphas expensive and the old PCL workstations cheap),
- the **speedup** user maximises speedup over the best single machine
  (§3.1's fixed-size speedup).

Each gets a *different* schedule from the same framework — the point of
putting the metric in the User Specification rather than in the system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coordinator import AppLeSAgent
from repro.core.estimator import make_estimator
from repro.core.infopool import InformationPool
from repro.core.resources import ResourcePool
from repro.core.schedule import Schedule
from repro.core.userspec import UserSpecification
from repro.jacobi.apples import JacobiPlanner
from repro.jacobi.grid import JacobiProblem, jacobi_hat
from repro.jacobi.runtime import simulated_execution
from repro.nws.service import NetworkWeatherService
from repro.sim.testbeds import sdsc_pcl_testbed
from repro.util.tables import Table

__all__ = ["MetricsResult", "run_metrics_comparison", "DEFAULT_COST_RATES"]

#: Per-CPU-second rates: centre machines cost real money, lab workstations
#: are effectively free (their depreciation is sunk).
DEFAULT_COST_RATES: dict[str, float] = {
    "alpha1": 1.0, "alpha2": 1.0, "alpha3": 1.0, "alpha4": 1.0,
    "rs6000a": 0.15, "rs6000b": 0.15,
    "sparc10": 0.05, "sparc2": 0.02,
}


@dataclass
class MetricsResult:
    """One schedule + measured outcome per user metric.

    Note: fixed-size speedup is a monotone transform of execution time, so
    the speedup and time users select the *same* schedule (as they should
    — 3D-REACT's developers "sought to minimize execution time by
    maximizing speedup", §3.1); the cost user is the one who diverges.
    """

    schedules: dict[str, Schedule]
    times: dict[str, float]
    costs: dict[str, float]
    best_single_s: float

    def table(self) -> Table:
        t = Table(
            ["user metric", "machines", "execution (s)", "cost (units)",
             "speedup vs best single"],
            title="METRIC-A6 — three users, one metacomputer, three metrics (§3.1)",
        )
        for metric in ("execution_time", "cost", "speedup"):
            sched = self.schedules[metric]
            t.add(metric, ",".join(sched.resource_set),
                  self.times[metric], self.costs[metric],
                  self.best_single_s / self.times[metric])
        return t

    @property
    def schedules_differ(self) -> bool:
        """Whether at least two users got different resource sets."""
        sets = {tuple(s.resource_set) for s in self.schedules.values()}
        return len(sets) >= 2


def run_metrics_comparison(
    n: int = 1600,
    iterations: int = 60,
    seed: int = 1996,
    warmup_s: float = 600.0,
    cost_rates: dict[str, float] | None = None,
) -> MetricsResult:
    """Schedule the same job under the three §3.1 metrics and execute all."""
    rates = cost_rates if cost_rates is not None else dict(DEFAULT_COST_RATES)
    testbed = sdsc_pcl_testbed(seed=seed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=seed + 1)
    nws.warmup(warmup_s)
    problem = JacobiProblem(n=n, iterations=iterations)
    pool = ResourcePool(testbed.topology, nws)
    planner = JacobiPlanner(problem)

    def agent_for(metric: str) -> AppLeSAgent:
        us = UserSpecification(
            performance_metric=metric, cost_per_cpu_second=dict(rates)
        )
        info = InformationPool(pool=pool, hat=jacobi_hat(problem), userspec=us)
        if metric == "speedup":
            # Baseline: the best predicted single-machine time.
            def baseline(ip: InformationPool) -> float:
                best = float("inf")
                for name in ip.pool.machine_names():
                    sched = planner.plan([name], ip)
                    if sched is not None:
                        best = min(best, sched.predicted_time)
                return best

            estimator = make_estimator("speedup", baseline=baseline)
        elif metric == "cost":
            # A small time weight breaks ties among all-free schedules.
            estimator = make_estimator("cost", time_weight=1e-3)
        else:
            estimator = make_estimator(metric)
        return AppLeSAgent(info, planner=planner, estimator=estimator)

    info_plain = InformationPool(pool=pool, hat=jacobi_hat(problem))
    best_single = float("inf")
    for name in pool.machine_names():
        sched = planner.plan([name], info_plain)
        if sched is None:
            continue
        run = simulated_execution(testbed.topology, sched, warmup_s)
        best_single = min(best_single, run.total_time)

    schedules: dict[str, Schedule] = {}
    times: dict[str, float] = {}
    costs: dict[str, float] = {}
    for metric in ("execution_time", "cost", "speedup"):
        sched = agent_for(metric).schedule().best
        run = simulated_execution(testbed.topology, sched, warmup_s)
        schedules[metric] = sched
        times[metric] = run.total_time
        costs[metric] = run.total_time * sum(
            rates.get(m, 0.0) for m in sched.resource_set
        )
    return MetricsResult(
        schedules=schedules, times=times, costs=costs, best_single_s=best_single
    )

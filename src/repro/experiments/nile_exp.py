"""NILE-T1: the Site Manager's skim-vs-remote decision (§2.1).

"The cost of skimming is compared with a prediction of the reduction in
cost of event analysis when the data is local."  The driver sweeps the
number of expected repeat analyses and reports the predicted costs, the
crossover point, and the decision, for several skim fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.resources import ResourcePool
from repro.nile.analysis import AnalysisProgram, HistogramAnalysis
from repro.nile.events import PASS2, EventBatch
from repro.nile.site_manager import SiteManager, SkimDecision
from repro.nile.storage import TAPE, StoredDataset
from repro.nws.service import NetworkWeatherService
from repro.sim.testbeds import nile_testbed
from repro.util.tables import Table

__all__ = ["NileSkimResult", "run_nile_skim"]


@dataclass
class NileSkimResult:
    """Decisions across (skim fraction, expected runs) combinations."""

    nevents: int
    decisions: list[tuple[float, int, SkimDecision]] = field(default_factory=list)

    def table(self) -> Table:
        t = Table(
            ["skim frac", "expected runs", "skim cost (s)", "remote run (s)",
             "local run (s)", "crossover", "skim?"],
            title=(
                f"NILE-T1 — Site Manager skim-vs-remote decision "
                f"({self.nevents} pass2 events on remote tape)"
            ),
        )
        for frac, runs, d in self.decisions:
            t.add(frac, runs, d.skim_cost_s, d.remote_run_s, d.local_run_s,
                  d.crossover_runs, d.skim)
        return t

    def decision_for(self, frac: float, runs: int) -> SkimDecision:
        """Look up one decision."""
        for f, r, d in self.decisions:
            if f == frac and r == runs:
                return d
        raise KeyError(f"no decision for frac={frac}, runs={runs}")

    @property
    def decisions_monotone_in_runs(self) -> bool:
        """Once skimming pays at r runs, it must also pay at r' > r."""
        by_frac: dict[float, list[tuple[int, bool]]] = {}
        for f, r, d in self.decisions:
            by_frac.setdefault(f, []).append((r, d.skim))
        for rows in by_frac.values():
            rows.sort()
            seen_true = False
            for _, skim in rows:
                if seen_true and not skim:
                    return False
                seen_true = seen_true or skim
        return True


def run_nile_skim(
    nevents: int = 500_000,
    program: AnalysisProgram | None = None,
    skim_fractions: tuple[float, ...] = (0.05, 0.2, 1.0),
    runs: tuple[int, ...] = (1, 2, 5, 10, 50),
    seed: int = 1996,
    warmup_s: float = 600.0,
) -> NileSkimResult:
    """Run the skim-decision sweep on the NILE testbed.

    The dataset lives on tape at site 0; the analysing physicist sits at
    site 1 (so both remote access and skims cross a WAN).
    """
    program = program if program is not None else HistogramAnalysis()
    testbed = nile_testbed(seed=seed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=seed + 1)
    nws.warmup(warmup_s)
    pool = ResourcePool(testbed.topology, nws)
    dataset = StoredDataset(
        "run4-pass2", EventBatch(nevents, PASS2, seed=seed), TAPE,
        host="site0-alpha0",
    )
    manager = SiteManager(site="site1", pool=pool)
    manager.register(dataset)

    result = NileSkimResult(nevents=nevents)
    for frac in skim_fractions:
        for r in runs:
            decision = manager.decide_skim(
                dataset, program, expected_runs=r, skim_fraction=frac
            )
            result.decisions.append((frac, r, decision))
    return result

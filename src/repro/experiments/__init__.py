"""Experiment drivers reproducing the paper's figures and claims.

Each module implements one evaluation artifact end-to-end (build testbed →
warm NWS → schedule → execute on the simulator → tabulate), so the
benchmark harness, the examples and the integration tests all run the
*same* code:

- :mod:`repro.experiments.fig34` — Figures 3 & 4 (partition geometry),
- :mod:`repro.experiments.fig5` — Figure 5 (AppLeS vs Strip vs Blocked),
- :mod:`repro.experiments.fig6` — Figure 6 (memory-aware scheduling),
- :mod:`repro.experiments.react_exp` — the §2.3 3D-REACT claims,
- :mod:`repro.experiments.nile_exp` — the §2.1 skim-vs-remote decision,
- :mod:`repro.experiments.nws_exp` — forecaster-quality ablation (§3.6),
- :mod:`repro.experiments.ablation` — information/selection ablations.
"""

from repro.experiments.ablation import (
    InformationAblationResult,
    run_information_ablation,
    run_selection_ablation,
)
from repro.experiments.adaptive_exp import (
    AdaptiveAblationResult,
    regime_change_testbed,
    run_adaptive_ablation,
)
from repro.experiments.decomposition_exp import (
    DecompositionResult,
    run_decomposition_ablation,
)
from repro.experiments.fig34 import Fig34Result, run_fig34
from repro.experiments.fig5 import (
    Fig5ReplicatedResult,
    Fig5ReplicatedRow,
    Fig5Result,
    Fig5Row,
    run_fig5,
    run_fig5_replicated,
)
from repro.experiments.fig6 import (
    Fig6ReplicatedResult,
    Fig6ReplicatedRow,
    Fig6Result,
    Fig6Row,
    run_fig6,
    run_fig6_replicated,
)
from repro.experiments.metrics_exp import MetricsResult, run_metrics_comparison
from repro.experiments.multiapp_exp import (
    MultiAppResult,
    ServiceContentionResult,
    ServiceContentionRow,
    make_injectable,
    run_multiapp,
    run_service_contention,
)
from repro.experiments.nile_exp import NileSkimResult, run_nile_skim
from repro.experiments.nws_exp import NwsForecastResult, run_nws_comparison
from repro.experiments.react_exp import ReactResult, run_react

__all__ = [
    "run_adaptive_ablation",
    "AdaptiveAblationResult",
    "regime_change_testbed",
    "run_fig34",
    "run_decomposition_ablation",
    "DecompositionResult",
    "Fig34Result",
    "run_fig5",
    "run_fig5_replicated",
    "Fig5Row",
    "Fig5Result",
    "Fig5ReplicatedRow",
    "Fig5ReplicatedResult",
    "run_fig6",
    "run_fig6_replicated",
    "Fig6Row",
    "Fig6Result",
    "Fig6ReplicatedRow",
    "Fig6ReplicatedResult",
    "run_react",
    "ReactResult",
    "run_nile_skim",
    "run_multiapp",
    "run_service_contention",
    "ServiceContentionResult",
    "ServiceContentionRow",
    "run_metrics_comparison",
    "MetricsResult",
    "MultiAppResult",
    "make_injectable",
    "NileSkimResult",
    "run_nws_comparison",
    "NwsForecastResult",
    "run_information_ablation",
    "InformationAblationResult",
    "run_selection_ablation",
]

"""Figure 6: execution time when memory is accounted for.

The paper added "two unloaded SP-2 processors to the resource pool ...
Due to the lack of contention for the SP-2 resources, the best partition
in this environment uses only SP-2 resources until their real memory is
exceeded.  AppLeS identifies the SP-2 resources as the best partition
until problem size 3700×3700 is reached.  At this point, the AppLeS
scheduler locates available memory elsewhere in the resource pool ...
In contrast, the HPF Uniform/Blocked partition performs well up to
3700×3700 but then spills from memory causing a dramatic reduction in
performance."

This driver sweeps problem sizes across the calibrated crossover and
reports, per size, the AppLeS time, the Blocked-on-SP2 time, and which
machines AppLeS used.  Each size is one runner task; every task plans at
the same warmed instant, so the sweep parallelises trivially.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jacobi.apples import BlockedPlanner, make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.jacobi.runtime import assignments_from_schedule, simulated_execution
from repro.runner import ParallelRunner, Task
from repro.sim.execution_ensemble import ReplicaSpec, run_ensemble
from repro.sim.testbeds import sdsc_pcl_with_sp2
from repro.sim.warmcache import warmed_state
from repro.util.rng import derive_seed
from repro.util.stats import MeanCI, mean_ci
from repro.util.tables import Table

__all__ = [
    "Fig6Row",
    "Fig6Result",
    "Fig6ReplicatedRow",
    "Fig6ReplicatedResult",
    "run_fig6",
    "run_fig6_replicated",
    "DEFAULT_SIZES_FIG6",
]

DEFAULT_SIZES_FIG6 = (1000, 2000, 3000, 3500, 3700, 3900, 4200, 4600)


@dataclass(frozen=True)
class Fig6Row:
    """Measurements for one problem size."""

    n: int
    apples_s: float
    blocked_sp2_s: float
    apples_machines: tuple[str, ...]
    blocked_spills: bool

    @property
    def apples_uses_only_sp2(self) -> bool:
        """Whether the AppLeS schedule stayed on the SP-2 pair."""
        return all(m.startswith("sp2") for m in self.apples_machines)


@dataclass
class Fig6Result:
    """All rows plus reporting helpers."""

    rows: list[Fig6Row] = field(default_factory=list)
    crossover_n: int = 3700
    iterations: int = 0

    def table(self) -> Table:
        t = Table(
            ["n", "AppLeS_s", "Blocked(SP2)_s", "Blocked/AppLeS",
             "AppLeS machines", "blocked spills"],
            title=(
                "Figure 6 — Jacobi2D with memory accounted "
                f"(crossover calibrated at n={self.crossover_n}, "
                f"{self.iterations} iterations)"
            ),
        )
        for r in self.rows:
            t.add(
                r.n, r.apples_s, r.blocked_sp2_s,
                r.blocked_sp2_s / r.apples_s,
                "sp2 only" if r.apples_uses_only_sp2
                else f"{len(r.apples_machines)} hosts",
                r.blocked_spills,
            )
        return t


def _fig6_schedules(
    n: int,
    iterations: int,
    seed: int,
    crossover_n: int,
    warmup_s: float,
):
    """Plan one problem size's pair of schedules without executing.

    Returns ``(topology, apples_sched, blocked_sched, blocked_spills)`` —
    the seam the replicated runner uses to batch executions.
    """
    testbed, nws = warmed_state(
        sdsc_pcl_with_sp2,
        seed=seed,
        warmup_s=warmup_s,
        builder_kwargs={"crossover_n": crossover_n},
    )
    sp2_pair = ["sp2-1", "sp2-2"]
    sp2_capacity_mb = testbed.topology.host("sp2-1").memory.available_mb

    problem = JacobiProblem(n=n, iterations=iterations)
    agent = make_jacobi_agent(testbed, problem, nws)
    apples_sched = agent.schedule().best
    blocked_sched = BlockedPlanner(problem).plan(sp2_pair, agent.info)
    per_node_mb = problem.footprint_mb(problem.total_points / 2)
    return (
        testbed.topology,
        apples_sched,
        blocked_sched,
        per_node_mb > sp2_capacity_mb,
    )


def _fig6_trial(
    n: int,
    iterations: int,
    seed: int,
    crossover_n: int,
    warmup_s: float,
) -> tuple[float, float, tuple[str, ...], bool]:
    """One problem size on the SP-2-augmented testbed.

    Returns ``(apples_s, blocked_sp2_s, apples_machines, blocked_spills)``.
    """
    topology, apples_sched, blocked_sched, spills = _fig6_schedules(
        n, iterations, seed, crossover_n, warmup_s
    )
    apples = simulated_execution(topology, apples_sched, warmup_s)
    blocked = simulated_execution(topology, blocked_sched, warmup_s)
    return (
        apples.total_time,
        blocked.total_time,
        tuple(apples_sched.resource_set),
        spills,
    )


def run_fig6(
    sizes: tuple[int, ...] = DEFAULT_SIZES_FIG6,
    iterations: int = 30,
    seed: int = 1996,
    crossover_n: int = 3700,
    warmup_s: float = 600.0,
    workers: int | None = 1,
) -> Fig6Result:
    """Run the Figure 6 experiment on the SP-2-augmented testbed."""
    tasks = [
        Task(
            _fig6_trial,
            dict(n=n, iterations=iterations, seed=seed,
                 crossover_n=crossover_n, warmup_s=warmup_s),
            key=(n,),
        )
        for n in sizes
    ]
    trials = ParallelRunner(workers).run(
        tasks,
        prime=lambda: warmed_state(
            sdsc_pcl_with_sp2, seed=seed, warmup_s=warmup_s,
            builder_kwargs={"crossover_n": crossover_n},
        ),
    )

    result = Fig6Result(crossover_n=crossover_n, iterations=iterations)
    for n, (apples_s, blocked_s, machines, spills) in zip(sizes, trials):
        result.rows.append(
            Fig6Row(
                n=n,
                apples_s=apples_s,
                blocked_sp2_s=blocked_s,
                apples_machines=machines,
                blocked_spills=spills,
            )
        )
    return result


@dataclass(frozen=True)
class Fig6ReplicatedRow:
    """Per-size means with confidence intervals across replicates."""

    n: int
    apples: MeanCI
    blocked_sp2: MeanCI
    sp2_only_fraction: float
    blocked_spills: bool


@dataclass
class Fig6ReplicatedResult:
    """Figure 6 across independently-seeded replicate worlds."""

    rows: list[Fig6ReplicatedRow] = field(default_factory=list)
    crossover_n: int = 3700
    iterations: int = 0
    replicates: int = 0

    def table(self) -> Table:
        t = Table(
            ["n", "AppLeS_s", "Blocked(SP2)_s", "sp2-only", "blocked spills"],
            title=(
                "Figure 6 — Jacobi2D with memory accounted, mean ± 95% CI "
                f"({self.replicates} replicates, crossover n="
                f"{self.crossover_n}, {self.iterations} iterations)"
            ),
        )
        for r in self.rows:
            t.add(
                r.n, str(r.apples), str(r.blocked_sp2),
                f"{r.sp2_only_fraction:.0%}", r.blocked_spills,
            )
        return t


def run_fig6_replicated(
    sizes: tuple[int, ...] = DEFAULT_SIZES_FIG6,
    iterations: int = 30,
    seed: int = 1996,
    crossover_n: int = 3700,
    warmup_s: float = 600.0,
    replicates: int = 2,
) -> Fig6ReplicatedResult:
    """Figure 6 with Monte-Carlo confidence intervals over replicate worlds.

    Replicate 0 uses ``seed`` itself; further replicates derive
    ``(seed, "fig6-replicate", j)``.  Planning stays serial per replicate,
    but all ``replicates × sizes × 2`` executions run in one
    :func:`~repro.sim.execution_ensemble.run_ensemble` pass.
    """
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    seeds = [
        seed if j == 0 else derive_seed(seed, "fig6-replicate", j)
        for j in range(replicates)
    ]
    specs: list[ReplicaSpec] = []
    machine_sets: list[tuple[str, ...]] = []
    spill_flags: list[bool] = []
    for rep_seed in seeds:
        for n in sizes:
            topology, apples_sched, blocked_sched, spills = _fig6_schedules(
                n, iterations, rep_seed, crossover_n, warmup_s
            )
            machine_sets.append(tuple(apples_sched.resource_set))
            spill_flags.append(spills)
            for sched in (apples_sched, blocked_sched):
                specs.append(
                    ReplicaSpec(
                        topology,
                        assignments_from_schedule(sched),
                        t0=warmup_s,
                    )
                )
    timings = run_ensemble(specs, iterations=iterations)

    result = Fig6ReplicatedResult(
        crossover_n=crossover_n, iterations=iterations, replicates=replicates,
    )
    for i, n in enumerate(sizes):
        apples_times, blocked_times, sp2_only = [], [], 0
        for j in range(replicates):
            trial = j * len(sizes) + i
            apples_times.append(timings[2 * trial].total_time)
            blocked_times.append(timings[2 * trial + 1].total_time)
            if all(m.startswith("sp2") for m in machine_sets[trial]):
                sp2_only += 1
        result.rows.append(
            Fig6ReplicatedRow(
                n=n,
                apples=mean_ci(apples_times),
                blocked_sp2=mean_ci(blocked_times),
                sp2_only_fraction=sp2_only / replicates,
                blocked_spills=spill_flags[i],
            )
        )
    return result

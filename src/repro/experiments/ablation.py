"""Design ablations: what each ingredient of AppLeS is worth.

Two ablations called out in DESIGN.md:

- **ABL-A2 (information)** — the same planner run with three information
  regimes: *nominal* (no NWS; the compile-time information a careful user
  has), *NWS* (forecasts; what AppLeS uses), and *oracle* (the simulator's
  exact availability at schedule time; an upper bound on what measurement
  could provide).  §3.2/§3.6 argue dynamic prediction is the heart of the
  approach — this quantifies it.
- **ABL-A3 (selection)** — the value of choosing a resource *subset*:
  AppLeS full selection vs being forced to use every feasible machine vs
  the best single machine.  §5 notes minimal execution time is *not*
  achieved through maximal resource utilisation; this measures that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.infopool import InformationPool
from repro.core.resources import ResourcePool
from repro.core.selector import ResourceSelector
from repro.jacobi.apples import JacobiPlanner, make_jacobi_agent
from repro.jacobi.grid import JacobiProblem, jacobi_hat
from repro.jacobi.runtime import simulated_execution
from repro.runner import ParallelRunner, Task
from repro.sim.testbeds import sdsc_pcl_testbed
from repro.sim.warmcache import warmed_state
from repro.util.tables import Table

__all__ = [
    "OraclePool",
    "InformationAblationResult",
    "run_information_ablation",
    "SelectionAblationResult",
    "run_selection_ablation",
]


class OraclePool(ResourcePool):
    """A resource pool that predicts with the simulator's ground truth.

    Predictions use the exact availability at a fixed instant ``t_oracle``
    (the moment the schedule will start).  Still not clairvoyant — load
    changes *during* the run remain unseen — which is exactly the best any
    measurement system could do.
    """

    def __init__(self, topology, t_oracle: float) -> None:
        super().__init__(topology, nws=None)
        self.t_oracle = float(t_oracle)

    def predicted_availability(self, name: str) -> float:
        return self.topology.host(name).availability(self.t_oracle)

    def predicted_speed(self, name: str) -> float:
        host = self.topology.host(name)
        return host.speed_mflops * host.availability(self.t_oracle)

    def predicted_bandwidth(self, a: str, b: str, flows: int = 1) -> float:
        if a == b:
            return float("inf")
        return self.topology.path_bandwidth(a, b, self.t_oracle, flows)


@dataclass
class InformationAblationResult:
    """Execution times under the three information regimes."""

    n: int
    nominal_s: float
    nws_s: float
    oracle_s: float

    def table(self) -> Table:
        t = Table(
            ["information", "execution (s)", "vs oracle"],
            title=f"ABL-A2 — value of dynamic information (Jacobi2D n={self.n})",
        )
        for name, value in (
            ("nominal (static user)", self.nominal_s),
            ("NWS forecasts (AppLeS)", self.nws_s),
            ("oracle (truth at t0)", self.oracle_s),
        ):
            t.add(name, value, value / self.oracle_s)
        return t


def _information_trial(
    regime: str,
    n: int,
    iterations: int,
    seed: int,
    warmup_s: float,
) -> float:
    """One information regime ("nominal", "nws" or "oracle") → execution time."""
    testbed, nws = warmed_state(sdsc_pcl_testbed, seed=seed, warmup_s=warmup_s)
    problem = JacobiProblem(n=n, iterations=iterations)
    if regime == "nominal":
        pool: ResourcePool = ResourcePool(testbed.topology, nws=None)
    elif regime == "nws":
        pool = ResourcePool(testbed.topology, nws)
    elif regime == "oracle":
        pool = OraclePool(testbed.topology, warmup_s)
    else:  # pragma: no cover - driver bug
        raise ValueError(f"unknown information regime {regime!r}")

    info = InformationPool(pool=pool, hat=jacobi_hat(problem))
    from repro.core.coordinator import AppLeSAgent

    agent = AppLeSAgent(
        info, planner=JacobiPlanner(problem), selector=ResourceSelector()
    )
    sched = agent.schedule().best
    return simulated_execution(testbed.topology, sched, warmup_s).total_time


def run_information_ablation(
    n: int = 1600,
    iterations: int = 60,
    seed: int = 1996,
    warmup_s: float = 600.0,
    workers: int | None = 1,
) -> InformationAblationResult:
    """Run ABL-A2: same planner, three information sources, same window."""
    kwargs = dict(n=n, iterations=iterations, seed=seed, warmup_s=warmup_s)
    tasks = [
        Task(_information_trial, dict(regime=regime, **kwargs), key=(regime,))
        for regime in ("nominal", "nws", "oracle")
    ]
    prime = lambda: warmed_state(sdsc_pcl_testbed, seed=seed, warmup_s=warmup_s)  # noqa: E731
    nominal, with_nws, oracle = ParallelRunner(workers).run(tasks, prime=prime)
    return InformationAblationResult(
        n=n, nominal_s=nominal, nws_s=with_nws, oracle_s=oracle
    )


@dataclass
class SelectionAblationResult:
    """Execution times under the three selection regimes."""

    n: int
    apples_s: float
    apples_machines: int
    all_machines_s: float
    best_single_s: float

    def table(self) -> Table:
        t = Table(
            ["selection", "machines", "execution (s)"],
            title=f"ABL-A3 — value of resource selection (Jacobi2D n={self.n})",
        )
        t.add("AppLeS subset selection", self.apples_machines, self.apples_s)
        t.add("use every machine", 8, self.all_machines_s)
        t.add("best single machine", 1, self.best_single_s)
        return t


def _selection_trial(
    candidate: str,
    n: int,
    iterations: int,
    seed: int,
    warmup_s: float,
) -> tuple[float, int] | float | None:
    """One selection regime → execution time.

    ``candidate`` is ``"apples"`` (full subset selection; returns
    ``(time, machines_used)``), ``"everything"`` (all feasible machines),
    or a single host name (``None`` when no feasible plan exists).
    """
    testbed, nws = warmed_state(sdsc_pcl_testbed, seed=seed, warmup_s=warmup_s)
    problem = JacobiProblem(n=n, iterations=iterations)
    agent = make_jacobi_agent(testbed, problem, nws)

    if candidate == "apples":
        full = agent.schedule().best
        t = simulated_execution(testbed.topology, full, warmup_s).total_time
        return (t, len(full.resource_set))

    planner = JacobiPlanner(problem)
    hosts = testbed.host_names if candidate == "everything" else [candidate]
    sched = planner.plan(hosts, agent.info)
    if sched is None:
        return None
    return simulated_execution(testbed.topology, sched, warmup_s).total_time


def run_selection_ablation(
    n: int = 1600,
    iterations: int = 60,
    seed: int = 1996,
    warmup_s: float = 600.0,
    workers: int | None = 1,
) -> SelectionAblationResult:
    """Run ABL-A3 with NWS information throughout (isolating selection)."""
    host_names = list(sdsc_pcl_testbed(seed=seed).host_names)
    kwargs = dict(n=n, iterations=iterations, seed=seed, warmup_s=warmup_s)
    candidates = ["apples", "everything", *host_names]
    tasks = [
        Task(_selection_trial, dict(candidate=c, **kwargs), key=(c,))
        for c in candidates
    ]
    prime = lambda: warmed_state(sdsc_pcl_testbed, seed=seed, warmup_s=warmup_s)  # noqa: E731
    results = ParallelRunner(workers).run(tasks, prime=prime)

    apples_time, apples_machines = results[0]
    all_time = results[1]
    singles = [t for t in results[2:] if t is not None]
    best_single = min(singles) if singles else float("inf")

    return SelectionAblationResult(
        n=n,
        apples_s=apples_time,
        apples_machines=apples_machines,
        all_machines_s=all_time,
        best_single_s=best_single,
    )

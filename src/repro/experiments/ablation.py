"""Design ablations: what each ingredient of AppLeS is worth.

Two ablations called out in DESIGN.md:

- **ABL-A2 (information)** — the same planner run with three information
  regimes: *nominal* (no NWS; the compile-time information a careful user
  has), *NWS* (forecasts; what AppLeS uses), and *oracle* (the simulator's
  exact availability at schedule time; an upper bound on what measurement
  could provide).  §3.2/§3.6 argue dynamic prediction is the heart of the
  approach — this quantifies it.
- **ABL-A3 (selection)** — the value of choosing a resource *subset*:
  AppLeS full selection vs being forced to use every feasible machine vs
  the best single machine.  §5 notes minimal execution time is *not*
  achieved through maximal resource utilisation; this measures that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.infopool import InformationPool
from repro.core.resources import ResourcePool
from repro.core.selector import ResourceSelector
from repro.jacobi.apples import JacobiPlanner, make_jacobi_agent
from repro.jacobi.grid import JacobiProblem, jacobi_hat
from repro.jacobi.runtime import simulated_execution
from repro.nws.service import NetworkWeatherService
from repro.sim.testbeds import sdsc_pcl_testbed
from repro.util.tables import Table

__all__ = [
    "OraclePool",
    "InformationAblationResult",
    "run_information_ablation",
    "SelectionAblationResult",
    "run_selection_ablation",
]


class OraclePool(ResourcePool):
    """A resource pool that predicts with the simulator's ground truth.

    Predictions use the exact availability at a fixed instant ``t_oracle``
    (the moment the schedule will start).  Still not clairvoyant — load
    changes *during* the run remain unseen — which is exactly the best any
    measurement system could do.
    """

    def __init__(self, topology, t_oracle: float) -> None:
        super().__init__(topology, nws=None)
        self.t_oracle = float(t_oracle)

    def predicted_availability(self, name: str) -> float:
        return self.topology.host(name).availability(self.t_oracle)

    def predicted_speed(self, name: str) -> float:
        host = self.topology.host(name)
        return host.speed_mflops * host.availability(self.t_oracle)

    def predicted_bandwidth(self, a: str, b: str, flows: int = 1) -> float:
        if a == b:
            return float("inf")
        return self.topology.path_bandwidth(a, b, self.t_oracle, flows)


@dataclass
class InformationAblationResult:
    """Execution times under the three information regimes."""

    n: int
    nominal_s: float
    nws_s: float
    oracle_s: float

    def table(self) -> Table:
        t = Table(
            ["information", "execution (s)", "vs oracle"],
            title=f"ABL-A2 — value of dynamic information (Jacobi2D n={self.n})",
        )
        for name, value in (
            ("nominal (static user)", self.nominal_s),
            ("NWS forecasts (AppLeS)", self.nws_s),
            ("oracle (truth at t0)", self.oracle_s),
        ):
            t.add(name, value, value / self.oracle_s)
        return t


def run_information_ablation(
    n: int = 1600,
    iterations: int = 60,
    seed: int = 1996,
    warmup_s: float = 600.0,
) -> InformationAblationResult:
    """Run ABL-A2: same planner, three information sources, same window."""
    testbed = sdsc_pcl_testbed(seed=seed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=seed + 1)
    nws.warmup(warmup_s)
    problem = JacobiProblem(n=n, iterations=iterations)

    def run_with(pool: ResourcePool) -> float:
        info = InformationPool(pool=pool, hat=jacobi_hat(problem))
        from repro.core.coordinator import AppLeSAgent

        agent = AppLeSAgent(
            info, planner=JacobiPlanner(problem), selector=ResourceSelector()
        )
        sched = agent.schedule().best
        return simulated_execution(testbed.topology, sched, warmup_s).total_time

    nominal = run_with(ResourcePool(testbed.topology, nws=None))
    with_nws = run_with(ResourcePool(testbed.topology, nws))
    oracle = run_with(OraclePool(testbed.topology, warmup_s))
    return InformationAblationResult(
        n=n, nominal_s=nominal, nws_s=with_nws, oracle_s=oracle
    )


@dataclass
class SelectionAblationResult:
    """Execution times under the three selection regimes."""

    n: int
    apples_s: float
    apples_machines: int
    all_machines_s: float
    best_single_s: float

    def table(self) -> Table:
        t = Table(
            ["selection", "machines", "execution (s)"],
            title=f"ABL-A3 — value of resource selection (Jacobi2D n={self.n})",
        )
        t.add("AppLeS subset selection", self.apples_machines, self.apples_s)
        t.add("use every machine", 8, self.all_machines_s)
        t.add("best single machine", 1, self.best_single_s)
        return t


def run_selection_ablation(
    n: int = 1600,
    iterations: int = 60,
    seed: int = 1996,
    warmup_s: float = 600.0,
) -> SelectionAblationResult:
    """Run ABL-A3 with NWS information throughout (isolating selection)."""
    testbed = sdsc_pcl_testbed(seed=seed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=seed + 1)
    nws.warmup(warmup_s)
    problem = JacobiProblem(n=n, iterations=iterations)

    agent = make_jacobi_agent(testbed, problem, nws)
    full = agent.schedule().best
    apples_time = simulated_execution(testbed.topology, full, warmup_s).total_time

    planner = JacobiPlanner(problem)
    everything = planner.plan(testbed.host_names, agent.info)
    all_time = simulated_execution(testbed.topology, everything, warmup_s).total_time

    best_single = float("inf")
    for name in testbed.host_names:
        sched = planner.plan([name], agent.info)
        if sched is None:
            continue
        t = simulated_execution(testbed.topology, sched, warmup_s).total_time
        best_single = min(best_single, t)

    return SelectionAblationResult(
        n=n,
        apples_s=apples_time,
        apples_machines=len(full.resource_set),
        all_machines_s=all_time,
        best_single_s=best_single,
    )

"""NWS-A1: forecaster-quality comparison (§3.6).

"It is important to recognize that a schedule is only as good as the
accuracy of its underlying predictions."  This ablation measures each
forecaster's one-step MSE on traces from the three load-process families
used in the testbeds (AR(1), Markov on/off, spiky), plus the adaptive
ensemble, demonstrating why the NWS runs a *battery* of predictors: no
single forecaster wins on every process, while the ensemble tracks the
per-process winner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nws.ensemble import AdaptiveEnsemble
from repro.nws.forecasters import default_forecaster_family
from repro.runner import ParallelRunner, Task
from repro.sim.load import AR1Load, LoadProcess, MarkovLoad, SpikeLoad
from repro.util.rng import RngStream
from repro.util.tables import Table

__all__ = ["NwsForecastResult", "run_nws_comparison", "standard_processes"]


def standard_processes(seed: int) -> dict[str, LoadProcess]:
    """The three load-process families of the testbeds."""
    rng = RngStream(seed, "nws-exp")
    return {
        "ar1": AR1Load(mean=0.6, phi=0.92, sigma=0.08, rng=rng.child("ar1")),
        "markov": MarkovLoad(idle_level=0.9, busy_level=0.3, p_busy=0.1,
                             p_idle=0.25, rng=rng.child("markov")),
        "spike": SpikeLoad(base=0.95, spike_level=0.1, p_spike=0.06,
                           p_recover=0.5, rng=rng.child("spike")),
    }


@dataclass
class NwsForecastResult:
    """Per-(process, forecaster) MSEs; ensemble included as 'ensemble'."""

    nsamples: int
    mse: dict[str, dict[str, float]] = field(default_factory=dict)

    def table(self) -> Table:
        processes = sorted(self.mse)
        forecasters = sorted(self.mse[processes[0]])
        t = Table(
            ["forecaster"] + [f"MSE {p}" for p in processes],
            title=f"NWS-A1 — one-step forecast MSE over {self.nsamples} samples",
        )
        for f in forecasters:
            t.add(f, *[self.mse[p][f] for p in processes])
        return t

    def best_for(self, process: str) -> str:
        """Best non-ensemble forecaster for a process."""
        rows = {f: m for f, m in self.mse[process].items() if f != "ensemble"}
        return min(rows, key=rows.get)  # type: ignore[arg-type]

    def ensemble_regret(self, process: str) -> float:
        """Ensemble MSE over best single-forecaster MSE (1.0 = matches best)."""
        best = self.mse[process][self.best_for(process)]
        if best == 0.0:
            return 1.0
        return self.mse[process]["ensemble"] / best


def _score_trial(pname: str, member: int | str, nsamples: int, seed: int) -> tuple[str, float]:
    """Score one forecaster (family index, or "ensemble") on one load family.

    Regenerates the trace from ``(seed, pname)`` — deterministic, so every
    member of a family scores against the identical series no matter which
    worker runs it.  Returns ``(forecaster_name, mse)``.
    """
    trace = standard_processes(seed)[pname].sample(nsamples)
    if member == "ensemble":
        ens = AdaptiveEnsemble()
        predict = lambda: ens.forecast().value  # noqa: E731
        update = ens.update
        name = "ensemble"
    else:
        forecaster = default_forecaster_family()[member]
        predict = forecaster.forecast
        update = forecaster.update
        name = forecaster.name
    err = 0.0
    count = 0
    for i, value in enumerate(trace):
        if i > 0:
            err += (predict() - value) ** 2
            count += 1
        update(value)
    return name, err / count


def run_nws_comparison(
    nsamples: int = 600, seed: int = 1996, workers: int | None = 1
) -> NwsForecastResult:
    """Score every forecaster (and the ensemble) on every load family."""
    pnames = list(standard_processes(seed))
    members: list[int | str] = list(range(len(default_forecaster_family())))
    members.append("ensemble")

    tasks = [
        Task(
            _score_trial,
            dict(pname=pname, member=member, nsamples=nsamples, seed=seed),
            key=(pname, member),
        )
        for pname in pnames
        for member in members
    ]
    scored = ParallelRunner(workers).run(tasks)

    result = NwsForecastResult(nsamples=nsamples)
    per_process = len(members)
    for i, pname in enumerate(pnames):
        chunk = scored[i * per_process:(i + 1) * per_process]
        result.mse[pname] = {name: mse for name, mse in chunk}
    return result

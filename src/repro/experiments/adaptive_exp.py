"""ABL-A4: redistribution during execution (§3.2 extension).

A testbed whose load *regime changes mid-run* is where one-shot scheduling
breaks: machines that looked excellent at schedule time degrade, and the
initial partition keeps feeding them.  This experiment builds a scripted
regime-change metacomputer (deterministic trace loads: group A fast then
slow, group B slow then fast), runs the same problem with one-shot AppLeS
and with the adaptive runner, and reports times and redistribution events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jacobi.adaptive import AdaptiveJacobiRunner
from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.jacobi.runtime import simulated_execution
from repro.nws.service import NetworkWeatherService
from repro.runner import ParallelRunner, Task
from repro.sim.host import Host
from repro.sim.link import SharedSegment
from repro.sim.load import TraceLoad
from repro.sim.memory import MemoryModel
from repro.sim.testbeds import Testbed
from repro.sim.topology import Topology
from repro.util.tables import Table

__all__ = ["regime_change_testbed", "AdaptiveAblationResult", "run_adaptive_ablation"]


def regime_change_testbed(
    flip_at_s: float = 300.0, dt: float = 5.0, epochs: int = 400
) -> Testbed:
    """Six hosts on one fast segment; availability regimes flip at ``flip_at_s``.

    Group A (3 hosts) runs at 0.95 before the flip and 0.25 after; group B
    mirrors it.  Deterministic, so the experiment isolates the scheduling
    question from load randomness.
    """
    flip_epoch = int(flip_at_s / dt)
    if flip_epoch <= 0 or flip_epoch >= epochs:
        raise ValueError("flip must fall inside the trace")
    a_trace = [0.95] * flip_epoch + [0.25] * (epochs - flip_epoch)
    b_trace = [0.25] * flip_epoch + [0.95] * (epochs - flip_epoch)

    topo = Topology()
    members = []
    for i in range(3):
        name = f"groupA{i}"
        topo.add_host(Host(
            name, speed_mflops=40.0, memory=MemoryModel(128.0, 8.0),
            load=TraceLoad(a_trace, dt=dt), site="LAB", arch="alpha",
        ))
        members.append(name)
    for i in range(3):
        name = f"groupB{i}"
        topo.add_host(Host(
            name, speed_mflops=40.0, memory=MemoryModel(128.0, 8.0),
            load=TraceLoad(b_trace, dt=dt), site="LAB", arch="alpha",
        ))
        members.append(name)
    lan = SharedSegment("lan", bandwidth_mbit=100.0, latency_s=0.0005,
                        mac_efficiency=0.9)
    topo.attach_segment(lan, members)
    return Testbed(
        topology=topo,
        name="regime-change",
        segments={"lan": members},
        notes=f"Deterministic regime flip at t={flip_at_s:g}s.",
    )


@dataclass
class AdaptiveAblationResult:
    """One-shot vs adaptive under a mid-run regime change."""

    n: int
    iterations: int
    oneshot_s: float
    adaptive_s: float
    reschedules: int
    migration_s: float

    @property
    def improvement(self) -> float:
        """One-shot time over adaptive time."""
        return self.oneshot_s / self.adaptive_s

    def table(self) -> Table:
        t = Table(
            ["strategy", "execution (s)", "reschedules", "migration (s)"],
            title=(
                f"ABL-A4 — redistribution during execution "
                f"(Jacobi2D n={self.n}, regime flip mid-run)"
            ),
        )
        t.add("one-shot AppLeS", self.oneshot_s, 0, 0.0)
        t.add("adaptive AppLeS", self.adaptive_s, self.reschedules, self.migration_s)
        return t


def _adaptive_trial(
    kind: str,
    n: int,
    iterations: int,
    warmup_s: float,
    flip_at_s: float,
    check_every: int,
) -> tuple[float, int, float]:
    """One strategy on a private regime-change world.

    Returns ``(total_time, reschedules, migration_s)`` (zeros for the
    one-shot strategy).  Each trial builds its own testbed and NWS so the
    two strategies see identical load traces without sharing sensor state
    — which also makes the trial a pure, pool-shippable function.
    """
    problem = JacobiProblem(n=n, iterations=iterations)
    testbed = regime_change_testbed(flip_at_s=flip_at_s)
    nws = NetworkWeatherService.for_testbed(testbed, seed=3)
    nws.warmup(warmup_s)

    if kind == "oneshot":
        agent = make_jacobi_agent(testbed, problem, nws)
        sched = agent.schedule().best
        run = simulated_execution(testbed.topology, sched, warmup_s)
        return (run.total_time, 0, 0.0)

    runner = AdaptiveJacobiRunner(testbed, problem, nws, check_every=check_every)
    adaptive = runner.run(t0=warmup_s)
    return (adaptive.total_time, adaptive.reschedule_count, adaptive.migration_time)


def run_adaptive_ablation(
    n: int = 1200,
    iterations: int = 400,
    warmup_s: float = 120.0,
    flip_at_s: float = 130.0,
    check_every: int = 25,
    workers: int | None = 1,
) -> AdaptiveAblationResult:
    """Run ABL-A4 on the regime-change testbed.

    The run starts before the flip, so the one-shot schedule is built from
    (correct!) forecasts that group A is fast — and then the world changes.
    """
    kwargs = dict(n=n, iterations=iterations, warmup_s=warmup_s,
                  flip_at_s=flip_at_s, check_every=check_every)
    tasks = [
        Task(_adaptive_trial, dict(kind=kind, **kwargs), key=(kind,))
        for kind in ("oneshot", "adaptive")
    ]
    oneshot, adaptive = ParallelRunner(workers).run(tasks)

    return AdaptiveAblationResult(
        n=n,
        iterations=iterations,
        oneshot_s=oneshot[0],
        adaptive_s=adaptive[0],
        reschedules=adaptive[1],
        migration_s=adaptive[2],
    )

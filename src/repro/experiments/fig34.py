"""Figures 3 & 4: the partitions themselves.

Figure 3 shows the "non-intuitive" AppLeS strip partition of Jacobi2D on
the SDSC/PCL network — strip heights reflecting *deliverable* rather than
nominal performance; Figure 4 shows the non-uniform compile-time strip for
n = 2000×2000, "parameterized by (non-uniform) CPU speeds and bandwidth".

The driver emits both partitions side by side so the contrast the paper
draws (§5) is directly visible: machines the static partition trusts
(nominally fast but loaded) shrink or vanish in the AppLeS partition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jacobi.apples import StaticStripPlanner, make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.nws.service import NetworkWeatherService
from repro.sim.testbeds import sdsc_pcl_testbed
from repro.util.tables import Table

__all__ = ["Fig34Result", "run_fig34"]


@dataclass
class Fig34Result:
    """Row fractions of the AppLeS (Fig. 3) and static (Fig. 4) partitions."""

    n: int
    apples_rows: dict[str, int]
    static_rows: dict[str, int]
    apples_predicted_s: float
    static_predicted_s: float

    def table(self) -> Table:
        t = Table(
            ["machine", "Fig3 AppLeS rows", "Fig3 frac",
             "Fig4 static rows", "Fig4 frac"],
            title=f"Figures 3 & 4 — Jacobi2D strip partitions, n={self.n}",
        )
        machines = sorted(
            set(self.apples_rows) | set(self.static_rows),
            key=lambda m: (-self.static_rows.get(m, 0), m),
        )
        for m in machines:
            a = self.apples_rows.get(m, 0)
            s = self.static_rows.get(m, 0)
            t.add(m, a, a / self.n, s, s / self.n)
        return t

    def ascii_partition(self, which: str = "apples", width: int = 48) -> str:
        """A Figure 3/4-style picture: horizontal bands labelled by machine."""
        rows = self.apples_rows if which == "apples" else self.static_rows
        lines = [f"{which} partition of {self.n}x{self.n}:"]
        for machine, count in rows.items():
            band = max(1, round(count / self.n * 12))
            for i in range(band):
                label = f" {machine} ({count} rows)" if i == band // 2 else ""
                lines.append("|" + "-" * width + "|" + label)
        return "\n".join(lines)


def run_fig34(
    n: int = 2000,
    iterations: int = 100,
    seed: int = 1996,
    warmup_s: float = 600.0,
) -> Fig34Result:
    """Produce the Figure 3 (AppLeS) and Figure 4 (static) partitions."""
    testbed = sdsc_pcl_testbed(seed=seed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=seed + 1)
    nws.warmup(warmup_s)
    problem = JacobiProblem(n=n, iterations=iterations)

    agent = make_jacobi_agent(testbed, problem, nws)
    apples_sched = agent.schedule().best
    apples_part = apples_sched.metadata["partition"]

    static_sched = StaticStripPlanner(problem).plan(testbed.host_names, agent.info)
    static_part = static_sched.metadata["partition"]

    return Fig34Result(
        n=n,
        apples_rows={s.machine: s.row_count for s in apples_part.strips},
        static_rows={s.machine: s.row_count for s in static_part.strips},
        apples_predicted_s=apples_sched.predicted_time,
        static_predicted_s=static_sched.predicted_time,
    )

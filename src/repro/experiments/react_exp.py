"""The 3D-REACT evaluation (§2.3).

Two artifacts:

- **REACT-T1** — the timing claims: "The execution time for the entire
  code on either one dedicated CPU of the C90 or 64 nodes of the Delta or
  Paragon alone is in excess of 16 hours (wall clock time).  The execution
  time for the code on the distributed platform is just under 5 hours."
- **REACT-T2** — the pipeline-size tradeoff: "Too small a pipeline size
  means that Log-D computations will stop while they wait for more LHSF
  data.  Too large a pipeline size implies a buffering performance cost."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.react.apples import make_react_agent
from repro.react.pipeline import PipelineResult, simulate_pipeline, simulate_single_site
from repro.react.tasks import ReactProblem
from repro.sim.testbeds import casa_testbed
from repro.util.tables import Table

__all__ = ["ReactResult", "run_react"]


@dataclass
class ReactResult:
    """Everything the two REACT artifacts report."""

    c90_alone_s: float
    paragon_alone_s: float
    distributed_s: float
    chosen_pipeline_size: int
    chosen_lhsf_host: str
    chosen_logd_host: str
    predicted_s: float
    sweep: list[tuple[int, PipelineResult]] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Best single-site time over distributed time."""
        return min(self.c90_alone_s, self.paragon_alone_s) / self.distributed_s

    def timing_table(self) -> Table:
        t = Table(
            ["configuration", "wall clock (h)"],
            title="REACT-T1 — 3D-REACT execution time (paper: >16 h alone, <5 h distributed)",
        )
        t.add("C90 alone", self.c90_alone_s / 3600)
        t.add("Paragon alone", self.paragon_alone_s / 3600)
        t.add(
            f"distributed ({self.chosen_lhsf_host}->{self.chosen_logd_host}, "
            f"k={self.chosen_pipeline_size})",
            self.distributed_s / 3600,
        )
        return t

    def sweep_table(self) -> Table:
        t = Table(
            ["pipeline size", "makespan (h)", "consumer stall (s)"],
            title="REACT-T2 — makespan vs pipeline size (stall vs buffering tradeoff)",
        )
        for k, res in self.sweep:
            t.add(k, res.makespan_s / 3600, res.consumer_stall_s)
        return t

    @property
    def sweep_is_convexish(self) -> bool:
        """Whether the sweep has an interior minimum (not at either end)."""
        times = [res.makespan_s for _, res in self.sweep]
        best = times.index(min(times))
        return 0 < best < len(times) - 1


def run_react(problem: ReactProblem | None = None, seed: int = 1996) -> ReactResult:
    """Run the full 3D-REACT evaluation on the CASA testbed."""
    problem = problem if problem is not None else ReactProblem()
    testbed = casa_testbed(seed=seed)
    topo = testbed.topology

    c90 = simulate_single_site(topo, problem, "c90")
    paragon = simulate_single_site(topo, problem, "paragon")

    agent = make_react_agent(testbed, problem)
    best = agent.schedule().best
    lhsf_host = best.metadata["lhsf_host"]
    logd_host = best.metadata["logd_host"]
    k = best.metadata["pipeline_size"]

    distributed = simulate_pipeline(topo, problem, lhsf_host, logd_host, k)

    lo, hi = problem.pipeline_range
    sweep = [
        (size, simulate_pipeline(topo, problem, lhsf_host, logd_host, size))
        for size in range(lo, hi + 1)
    ]

    return ReactResult(
        c90_alone_s=c90,
        paragon_alone_s=paragon,
        distributed_s=distributed.makespan_s,
        chosen_pipeline_size=k,
        chosen_lhsf_host=lhsf_host,
        chosen_logd_host=logd_host,
        predicted_s=best.predicted_time,
        sweep=sweep,
    )

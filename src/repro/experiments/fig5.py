"""Figure 5: execution-time averages for Jacobi2D.

The paper executed "the AppLeS partition, the Non-uniform Strip partition,
and an HPF Uniform/Blocked partition back-to-back multiple times and
reported the averages, hoping that each partition would enjoy similar
conditions", for problem sizes 1000×1000 – 2000×2000, and found AppLeS
ahead "by factors of 2-8".

This driver reproduces the protocol on the simulated Figure 2 testbed:
for each problem size and each repeat, the three schedules are executed
back-to-back starting from the same simulated instant (each scheduler
re-plans from its own information source at that instant), and per-size
averages are reported.

Each (size, repeat) pair is one :class:`repro.runner.Task`: the trial
rebuilds its world from ``(seed, start instant)`` — via the warm-state
cache, which replays identical sensor streams — so results are the same
whether trials run serially or across a process pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jacobi.apples import (
    BlockedPlanner,
    StaticStripPlanner,
    make_jacobi_agent,
)
from repro.jacobi.grid import JacobiProblem
from repro.jacobi.runtime import assignments_from_schedule, simulated_execution
from repro.runner import ParallelRunner, Task
from repro.sim.execution_ensemble import ReplicaSpec, run_ensemble
from repro.sim.testbeds import sdsc_pcl_testbed
from repro.sim.warmcache import warmed_state
from repro.util.rng import derive_seed
from repro.util.stats import MeanCI, mean_ci
from repro.util.tables import Table

__all__ = [
    "Fig5Row",
    "Fig5Result",
    "Fig5ReplicatedRow",
    "Fig5ReplicatedResult",
    "run_fig5",
    "run_fig5_replicated",
    "DEFAULT_SIZES",
]

DEFAULT_SIZES = (1000, 1200, 1400, 1600, 1800, 2000)


@dataclass(frozen=True)
class Fig5Row:
    """Averaged measurements for one problem size."""

    n: int
    apples_s: float
    strip_s: float
    blocked_s: float

    @property
    def strip_ratio(self) -> float:
        """Non-uniform Strip time over AppLeS time."""
        return self.strip_s / self.apples_s

    @property
    def blocked_ratio(self) -> float:
        """HPF Uniform/Blocked time over AppLeS time."""
        return self.blocked_s / self.apples_s


@dataclass
class Fig5Result:
    """All rows plus reporting helpers."""

    rows: list[Fig5Row] = field(default_factory=list)
    iterations: int = 0
    repeats: int = 0

    def table(self) -> Table:
        """Render the figure's series as a table."""
        t = Table(
            ["n", "AppLeS_s", "Strip_s", "Blocked_s", "Strip/AppLeS", "Blocked/AppLeS"],
            title=(
                "Figure 5 — Jacobi2D execution time averages "
                f"({self.iterations} iterations, {self.repeats} repeats)"
            ),
        )
        for r in self.rows:
            t.add(r.n, r.apples_s, r.strip_s, r.blocked_s,
                  r.strip_ratio, r.blocked_ratio)
        return t

    @property
    def ratio_range(self) -> tuple[float, float]:
        """(min, max) of all baseline/AppLeS ratios — the paper's 2–8 band."""
        ratios = [r.strip_ratio for r in self.rows] + [
            r.blocked_ratio for r in self.rows
        ]
        return (min(ratios), max(ratios))


def _fig5_schedules(
    n: int,
    start: float,
    iterations: int,
    seed: int,
    warmup_s: float,
):
    """Plan the three schedules of one (size, repeat) unit at ``start``.

    Returns ``(topology, [apples, strip, blocked])`` without executing —
    the seam the replicated runner uses to batch executions.
    """
    testbed, nws = warmed_state(
        sdsc_pcl_testbed, seed=seed, warmup_s=warmup_s, at=start
    )
    problem = JacobiProblem(n=n, iterations=iterations)
    agent = make_jacobi_agent(testbed, problem, nws)
    apples_sched = agent.schedule().best
    info = agent.info
    strip_sched = StaticStripPlanner(problem).plan(testbed.host_names, info)
    blocked_sched = BlockedPlanner(problem).plan(testbed.host_names, info)
    return testbed.topology, [apples_sched, strip_sched, blocked_sched]


def _fig5_trial(
    n: int,
    start: float,
    iterations: int,
    seed: int,
    warmup_s: float,
) -> tuple[float, float, float]:
    """One (size, repeat) unit: the three schedules back-to-back at ``start``.

    Returns ``(apples_s, strip_s, blocked_s)``.  The trial is a pure
    function of its arguments — the warm-state cache only skips replaying
    sensor history the trial would otherwise regenerate identically.
    """
    topology, schedules = _fig5_schedules(n, start, iterations, seed, warmup_s)
    # Back-to-back under the same starting conditions.
    return tuple(
        simulated_execution(topology, sched, start).total_time
        for sched in schedules
    )


def run_fig5(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    iterations: int = 60,
    repeats: int = 3,
    seed: int = 1996,
    warmup_s: float = 600.0,
    gap_s: float = 400.0,
    workers: int | None = 1,
) -> Fig5Result:
    """Run the Figure 5 experiment.

    Parameters
    ----------
    sizes:
        Problem edge lengths.
    iterations:
        Jacobi sweeps per run.
    repeats:
        Back-to-back repetitions averaged per size (each starts at a
        different simulated instant, i.e. under different load).
    seed:
        Testbed load seed.
    warmup_s:
        NWS warm-up before the first schedule.
    gap_s:
        Simulated-time spacing between repeats.
    workers:
        Trial-level parallelism (see :class:`repro.runner.ParallelRunner`);
        any value produces bit-identical results.
    """
    tasks = []
    for i, n in enumerate(sizes):
        for rep in range(repeats):
            start = warmup_s + (i * repeats + rep) * gap_s
            tasks.append(
                Task(
                    _fig5_trial,
                    dict(n=n, start=start, iterations=iterations,
                         seed=seed, warmup_s=warmup_s),
                    key=(n, rep),
                )
            )
    trials = ParallelRunner(workers).run(
        tasks,
        # Warm the sensor history once in the parent; forked workers
        # inherit it instead of each replaying the warm-up.
        prime=lambda: warmed_state(sdsc_pcl_testbed, seed=seed, warmup_s=warmup_s),
    )

    result = Fig5Result(iterations=iterations, repeats=repeats)
    for i, n in enumerate(sizes):
        sums = {"apples": 0.0, "strip": 0.0, "blocked": 0.0}
        for rep in range(repeats):
            apples_s, strip_s, blocked_s = trials[i * repeats + rep]
            sums["apples"] += apples_s
            sums["strip"] += strip_s
            sums["blocked"] += blocked_s
        result.rows.append(
            Fig5Row(
                n=n,
                apples_s=sums["apples"] / repeats,
                strip_s=sums["strip"] / repeats,
                blocked_s=sums["blocked"] / repeats,
            )
        )
    return result


@dataclass(frozen=True)
class Fig5ReplicatedRow:
    """Per-size means with confidence intervals across replicates."""

    n: int
    apples: MeanCI
    strip: MeanCI
    blocked: MeanCI


@dataclass
class Fig5ReplicatedResult:
    """Figure 5 across independently-seeded replicate worlds."""

    rows: list[Fig5ReplicatedRow] = field(default_factory=list)
    per_replicate: list[Fig5Result] = field(default_factory=list)
    iterations: int = 0
    repeats: int = 0
    replicates: int = 0

    def table(self) -> Table:
        t = Table(
            ["n", "AppLeS_s", "Strip_s", "Blocked_s"],
            title=(
                "Figure 5 — Jacobi2D execution times, mean ± 95% CI "
                f"({self.replicates} replicates x {self.repeats} repeats, "
                f"{self.iterations} iterations)"
            ),
        )
        for r in self.rows:
            t.add(r.n, str(r.apples), str(r.strip), str(r.blocked))
        return t


def run_fig5_replicated(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    iterations: int = 60,
    repeats: int = 3,
    seed: int = 1996,
    warmup_s: float = 600.0,
    gap_s: float = 400.0,
    replicates: int = 2,
) -> Fig5ReplicatedResult:
    """Figure 5 with Monte-Carlo confidence intervals over replicate worlds.

    Replicate 0 is exactly the :func:`run_fig5` world (same seed); every
    further replicate re-runs the whole protocol under the derived seed
    ``(seed, "fig5-replicate", j)``.  Schedules are still planned serially
    per replicate (planning consumes warmed sensor state), but **all**
    ``replicates × sizes × repeats × 3`` executions are batched into one
    :func:`~repro.sim.execution_ensemble.run_ensemble` pass — each
    replica's time is bit-identical to the serial run under its seed.
    """
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    seeds = [
        seed if j == 0 else derive_seed(seed, "fig5-replicate", j)
        for j in range(replicates)
    ]
    specs: list[ReplicaSpec] = []
    for rep_seed in seeds:
        for i, n in enumerate(sizes):
            for rep in range(repeats):
                start = warmup_s + (i * repeats + rep) * gap_s
                topology, schedules = _fig5_schedules(
                    n, start, iterations, rep_seed, warmup_s
                )
                for sched in schedules:
                    specs.append(
                        ReplicaSpec(
                            topology,
                            assignments_from_schedule(sched),
                            t0=start,
                        )
                    )
    timings = run_ensemble(specs, iterations=iterations)

    per_replicate: list[Fig5Result] = []
    idx = 0
    for _ in seeds:
        rep_result = Fig5Result(iterations=iterations, repeats=repeats)
        for n in sizes:
            sums = [0.0, 0.0, 0.0]
            for _rep in range(repeats):
                for s in range(3):
                    sums[s] += timings[idx].total_time
                    idx += 1
            rep_result.rows.append(
                Fig5Row(
                    n=n,
                    apples_s=sums[0] / repeats,
                    strip_s=sums[1] / repeats,
                    blocked_s=sums[2] / repeats,
                )
            )
        per_replicate.append(rep_result)

    result = Fig5ReplicatedResult(
        per_replicate=per_replicate,
        iterations=iterations, repeats=repeats, replicates=replicates,
    )
    for i, n in enumerate(sizes):
        result.rows.append(
            Fig5ReplicatedRow(
                n=n,
                apples=mean_ci([r.rows[i].apples_s for r in per_replicate]),
                strip=mean_ci([r.rows[i].strip_s for r in per_replicate]),
                blocked=mean_ci([r.rows[i].blocked_s for r in per_replicate]),
            )
        )
    return result

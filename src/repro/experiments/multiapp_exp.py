"""MULTI-A5: two AppLeS applications sharing the metacomputer (§3).

"Each user and/or application-developer schedules their application so as
to optimize their own performance criteria without regard to the
performance goals of other applications which share the system.  However,
other applications create contention for shared resources, and are
experienced by an individual application in terms of the dynamically
varying performance capability of metacomputing system resources."

The experiment: application A schedules and starts running; its machines'
deliverable capability drops (each busy host is multiplied by an occupancy
level).  A second application B then schedules the same kind of job:

- **aware**: B's NWS has kept measuring, so its sensors have seen A's
  load and B's agent routes around A's machines;
- **oblivious**: B plans from the forecasts as they stood *before* A
  started (a stale snapshot) and piles onto the same machines.

Both B variants execute under A's real contention; the gap is the value
of the NWS keeping up with other applications — no inter-agent protocol
needed, exactly the paper's point that contention is simply *experienced*
as reduced capability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.jacobi.runtime import simulated_execution
from repro.nws.service import NetworkWeatherService
from repro.runner import ParallelRunner, Task
from repro.sim.jobs import make_injectable
from repro.sim.testbeds import sdsc_pcl_testbed
from repro.util.tables import Table

__all__ = ["make_injectable", "MultiAppResult", "run_multiapp"]


@dataclass
class MultiAppResult:
    """Outcome of the two-application experiment."""

    a_machines: tuple[str, ...]
    a_time_s: float
    aware_machines: tuple[str, ...]
    aware_time_s: float
    oblivious_machines: tuple[str, ...]
    oblivious_time_s: float

    @property
    def aware_overlap(self) -> int:
        """Machines B-aware shares with A."""
        return len(set(self.a_machines) & set(self.aware_machines))

    @property
    def oblivious_overlap(self) -> int:
        """Machines B-oblivious shares with A."""
        return len(set(self.a_machines) & set(self.oblivious_machines))

    @property
    def improvement(self) -> float:
        """Oblivious time over aware time."""
        return self.oblivious_time_s / self.aware_time_s

    def table(self) -> Table:
        t = Table(
            ["application", "machines", "overlap with A", "execution (s)"],
            title="MULTI-A5 — two applications sharing the metacomputer",
        )
        t.add("A (first)", ",".join(self.a_machines), "-", self.a_time_s)
        t.add("B aware (live NWS)", ",".join(self.aware_machines),
              self.aware_overlap, self.aware_time_s)
        t.add("B oblivious (stale NWS)", ",".join(self.oblivious_machines),
              self.oblivious_overlap, self.oblivious_time_s)
        return t


def _world_trial(
    aware: bool,
    n: int,
    iterations_a: int,
    iterations_b: int,
    occupancy_level: float,
    observe_s: float,
    seed: int,
    t_a: float,
) -> dict:
    """One world: A schedules at ``t_a``, occupies its machines, then B
    schedules at ``t_a + observe_s`` with live (aware) or stale NWS.

    Builds a private testbed — the load injectors *mutate* host models, so
    this trial must never share state through the warm cache.  Returns
    primitives (machine tuples and times) so results pickle cheaply.
    """
    problem_a = JacobiProblem(n=n, iterations=iterations_a)
    problem_b = JacobiProblem(n=n, iterations=iterations_b)

    testbed = sdsc_pcl_testbed(seed=seed)
    injectors = make_injectable(testbed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=seed + 1)
    nws.advance_to(t_a)

    agent_a = make_jacobi_agent(testbed, problem_a, nws)
    sched_a = agent_a.schedule().best
    run_a = simulated_execution(testbed.topology, sched_a, t_a)
    for machine in sched_a.resource_set:
        injectors[machine].occupy(t_a, t_a + run_a.total_time, occupancy_level)

    t_b = t_a + observe_s
    if aware:
        nws.advance_to(t_b)  # sensors see A's load
    agent_b = make_jacobi_agent(testbed, problem_b, nws)
    sched_b = agent_b.schedule().best
    run_b = simulated_execution(testbed.topology, sched_b, t_b)
    return {
        "a_machines": tuple(sched_a.resource_set),
        "a_time_s": run_a.total_time,
        "b_machines": tuple(sched_b.resource_set),
        "b_time_s": run_b.total_time,
    }


def run_multiapp(
    n: int = 1600,
    iterations_a: int = 3000,
    iterations_b: int = 400,
    occupancy_level: float = 0.15,
    observe_s: float = 120.0,
    seed: int = 1996,
    t_a: float = 600.0,
    workers: int | None = 1,
) -> MultiAppResult:
    """Run the two-application experiment.

    Application A runs long (``iterations_a``) so that B's entire run
    falls inside A's occupancy window; B schedules ``observe_s`` seconds
    after A starts, giving the aware NWS a few sensor periods to notice.
    """
    kwargs = dict(
        n=n, iterations_a=iterations_a, iterations_b=iterations_b,
        occupancy_level=occupancy_level, observe_s=observe_s,
        seed=seed, t_a=t_a,
    )
    tasks = [
        Task(_world_trial, dict(aware=aware, **kwargs), key=(aware,))
        for aware in (True, False)
    ]
    aware_world, oblivious_world = ParallelRunner(workers).run(tasks)

    return MultiAppResult(
        a_machines=aware_world["a_machines"],
        a_time_s=aware_world["a_time_s"],
        aware_machines=aware_world["b_machines"],
        aware_time_s=aware_world["b_time_s"],
        oblivious_machines=oblivious_world["b_machines"],
        oblivious_time_s=oblivious_world["b_time_s"],
    )

"""MULTI-A5: two AppLeS applications sharing the metacomputer (§3).

"Each user and/or application-developer schedules their application so as
to optimize their own performance criteria without regard to the
performance goals of other applications which share the system.  However,
other applications create contention for shared resources, and are
experienced by an individual application in terms of the dynamically
varying performance capability of metacomputing system resources."

The experiment: application A schedules and starts running; its machines'
deliverable capability drops (each busy host is multiplied by an occupancy
level).  A second application B then schedules the same kind of job:

- **aware**: B's NWS has kept measuring, so its sensors have seen A's
  load and B's agent routes around A's machines;
- **oblivious**: B plans from the forecasts as they stood *before* A
  started (a stale snapshot) and piles onto the same machines.

Both B variants execute under A's real contention; the gap is the value
of the NWS keeping up with other applications — no inter-agent protocol
needed, exactly the paper's point that contention is simply *experienced*
as reduced capability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jacobi.apples import make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.jacobi.runtime import simulated_execution
from repro.nws.service import NetworkWeatherService
from repro.runner import ParallelRunner, Task
from repro.sim.jobs import make_injectable
from repro.sim.testbeds import sdsc_pcl_testbed
from repro.util.tables import Table

__all__ = [
    "make_injectable",
    "MultiAppResult",
    "run_multiapp",
    "ServiceContentionRow",
    "ServiceContentionResult",
    "run_service_contention",
]


@dataclass
class MultiAppResult:
    """Outcome of the two-application experiment."""

    a_machines: tuple[str, ...]
    a_time_s: float
    aware_machines: tuple[str, ...]
    aware_time_s: float
    oblivious_machines: tuple[str, ...]
    oblivious_time_s: float

    @property
    def aware_overlap(self) -> int:
        """Machines B-aware shares with A."""
        return len(set(self.a_machines) & set(self.aware_machines))

    @property
    def oblivious_overlap(self) -> int:
        """Machines B-oblivious shares with A."""
        return len(set(self.a_machines) & set(self.oblivious_machines))

    @property
    def improvement(self) -> float:
        """Oblivious time over aware time."""
        return self.oblivious_time_s / self.aware_time_s

    def table(self) -> Table:
        t = Table(
            ["application", "machines", "overlap with A", "execution (s)"],
            title="MULTI-A5 — two applications sharing the metacomputer",
        )
        t.add("A (first)", ",".join(self.a_machines), "-", self.a_time_s)
        t.add("B aware (live NWS)", ",".join(self.aware_machines),
              self.aware_overlap, self.aware_time_s)
        t.add("B oblivious (stale NWS)", ",".join(self.oblivious_machines),
              self.oblivious_overlap, self.oblivious_time_s)
        return t


def _world_trial(
    aware: bool,
    n: int,
    iterations_a: int,
    iterations_b: int,
    occupancy_level: float,
    observe_s: float,
    seed: int,
    t_a: float,
) -> dict:
    """One world: A schedules at ``t_a``, occupies its machines, then B
    schedules at ``t_a + observe_s`` with live (aware) or stale NWS.

    Builds a private testbed — the load injectors *mutate* host models, so
    this trial must never share state through the warm cache.  Returns
    primitives (machine tuples and times) so results pickle cheaply.
    """
    problem_a = JacobiProblem(n=n, iterations=iterations_a)
    problem_b = JacobiProblem(n=n, iterations=iterations_b)

    testbed = sdsc_pcl_testbed(seed=seed)
    injectors = make_injectable(testbed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=seed + 1)
    nws.advance_to(t_a)

    agent_a = make_jacobi_agent(testbed, problem_a, nws)
    sched_a = agent_a.schedule().best
    run_a = simulated_execution(testbed.topology, sched_a, t_a)
    for machine in sched_a.resource_set:
        injectors[machine].occupy(t_a, t_a + run_a.total_time, occupancy_level)

    t_b = t_a + observe_s
    if aware:
        nws.advance_to(t_b)  # sensors see A's load
    agent_b = make_jacobi_agent(testbed, problem_b, nws)
    sched_b = agent_b.schedule().best
    run_b = simulated_execution(testbed.topology, sched_b, t_b)
    return {
        "a_machines": tuple(sched_a.resource_set),
        "a_time_s": run_a.total_time,
        "b_machines": tuple(sched_b.resource_set),
        "b_time_s": run_b.total_time,
    }


def run_multiapp(
    n: int = 1600,
    iterations_a: int = 3000,
    iterations_b: int = 400,
    occupancy_level: float = 0.15,
    observe_s: float = 120.0,
    seed: int = 1996,
    t_a: float = 600.0,
    workers: int | None = 1,
) -> MultiAppResult:
    """Run the two-application experiment.

    Application A runs long (``iterations_a``) so that B's entire run
    falls inside A's occupancy window; B schedules ``observe_s`` seconds
    after A starts, giving the aware NWS a few sensor periods to notice.
    """
    kwargs = dict(
        n=n, iterations_a=iterations_a, iterations_b=iterations_b,
        occupancy_level=occupancy_level, observe_s=observe_s,
        seed=seed, t_a=t_a,
    )
    tasks = [
        Task(_world_trial, dict(aware=aware, **kwargs), key=(aware,))
        for aware in (True, False)
    ]
    aware_world, oblivious_world = ParallelRunner(workers).run(tasks)

    return MultiAppResult(
        a_machines=aware_world["a_machines"],
        a_time_s=aware_world["a_time_s"],
        aware_machines=aware_world["b_machines"],
        aware_time_s=aware_world["b_time_s"],
        oblivious_machines=oblivious_world["b_machines"],
        oblivious_time_s=oblivious_world["b_time_s"],
    )


# -- CONTEND: many agents deciding together through the service -----------


@dataclass(frozen=True)
class ServiceContentionRow:
    """One application's decision and its fate under everyone's load."""

    app: int
    machines: tuple[str, ...]
    shared: int  # how many of its machines at least one other app also took
    predicted_s: float
    actual_s: float

    @property
    def degradation(self) -> float:
        """Actual time over the (contention-blind) predicted time."""
        return self.actual_s / self.predicted_s


@dataclass
class ServiceContentionResult:
    """Outcome of the many-agent contention scenario."""

    rows: list[ServiceContentionRow] = field(default_factory=list)
    occupancy_level: float = 0.0
    service_matches_solo: bool = False

    def table(self) -> Table:
        t = Table(
            ["app", "machines", "shared", "predicted (s)",
             "actual (s)", "actual/predicted"],
            title=(
                "CONTEND — one service batch, every agent optimising alone "
                f"(occupancy x{self.occupancy_level:g} per co-tenant)"
            ),
        )
        for r in self.rows:
            t.add(r.app, ",".join(r.machines), r.shared,
                  r.predicted_s, r.actual_s, r.degradation)
        return t

    @property
    def mean_degradation(self) -> float:
        return sum(r.degradation for r in self.rows) / len(self.rows)


def _contention_trial(
    k: int,
    napps: int,
    n: int,
    iterations: int,
    plans: tuple[tuple[tuple[str, ...], float], ...],
    occupancy_level: float,
    seed: int,
    t0: float,
) -> float:
    """Execute application ``k`` under every *other* application's load.

    Rebuilds a private world (injectors mutate host models), re-derives
    app ``k``'s schedule at ``t0`` from the uncontended forecasts — the
    same decision the service handed out, as the parent asserts — then
    occupies the other apps' machines for their predicted runtimes and
    executes ``k``'s schedule in that weather.
    """
    testbed = sdsc_pcl_testbed(seed=seed)
    injectors = make_injectable(testbed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=seed + 1)
    nws.advance_to(t0)

    problem = JacobiProblem(n=n + 100 * (k % 3), iterations=iterations + k)
    agent = make_jacobi_agent(testbed, problem, nws)
    sched = agent.schedule().best

    for j, (machines, predicted_s) in enumerate(plans):
        if j == k:
            continue
        for machine in machines:
            injectors[machine].occupy(t0, t0 + predicted_s, occupancy_level)
    return simulated_execution(testbed.topology, sched, t0).total_time


def run_service_contention(
    napps: int = 5,
    n: int = 1200,
    iterations: int = 80,
    occupancy_level: float = 0.15,
    seed: int = 1996,
    t0: float = 600.0,
    workers: int | None = 1,
) -> ServiceContentionResult:
    """CONTEND: ``napps`` agents decide *at the same instant* via the service.

    Every application optimises its own completion time from the same NWS
    snapshot, with no regard for the others (§3) — the scheduling service
    merely answers all of them in one batch.  Each application then runs
    under the combined occupancy of everyone else's choices, and the gap
    between its contention-blind prediction and its actual time measures
    the contention the agents *experience* rather than negotiate.

    The service's batch is checked against solo ``schedule()`` calls in a
    value-identical world before anything executes — the scenario doubles
    as an end-to-end differential test of the batched core.
    """
    from repro.service import DecisionRequest, SchedulingService

    requests = [
        DecisionRequest(
            problem=JacobiProblem(n=n + 100 * (k % 3), iterations=iterations + k),
            at=t0,
        )
        for k in range(napps)
    ]

    testbed = sdsc_pcl_testbed(seed=seed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=seed + 1)
    service = SchedulingService(testbed, nws)
    answers = service.decide(requests)

    # Differential check in a fresh, value-identical world: the batch must
    # hand every agent exactly its solo decision.
    solo_testbed = sdsc_pcl_testbed(seed=seed)
    solo_nws = NetworkWeatherService.for_testbed(solo_testbed, seed=seed + 1)
    solo_nws.advance_to(t0)
    for request, answer in zip(requests, answers):
        solo = make_jacobi_agent(solo_testbed, request.problem, solo_nws).schedule()
        if (
            answer.machines != solo.best.resource_set
            or answer.predicted_time != solo.best.predicted_time
        ):
            raise AssertionError(
                f"service answer diverged from solo agent for app "
                f"{requests.index(request)}: {answer.machines} vs "
                f"{solo.best.resource_set}"
            )

    plans = tuple((a.machines, a.predicted_time) for a in answers)
    tasks = [
        Task(
            _contention_trial,
            dict(k=k, napps=napps, n=n, iterations=iterations, plans=plans,
                 occupancy_level=occupancy_level, seed=seed, t0=t0),
            key=(k,),
        )
        for k in range(napps)
    ]
    actuals = ParallelRunner(workers).run(tasks)

    result = ServiceContentionResult(
        occupancy_level=occupancy_level, service_matches_solo=True
    )
    for k, (answer, actual_s) in enumerate(zip(answers, actuals)):
        others = set()
        for j, a in enumerate(answers):
            if j != k:
                others.update(a.machines)
        result.rows.append(
            ServiceContentionRow(
                app=k,
                machines=answer.machines,
                shared=len(set(answer.machines) & others),
                predicted_s=answer.predicted_time,
                actual_s=actual_s,
            )
        )
    return result

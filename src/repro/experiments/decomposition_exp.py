"""ABL-A7: strip vs generalised-block decompositions (§5's deferral).

"Due to the non-linearity (and hence complexity) of developing predictions
for non-strip data decompositions, the user specified that only strip
decompositions should be considered during the planning of the schedule."

Was the user right to defer?  This ablation runs the full AppLeS blueprint
twice on the same testbed window — once with the strip planner, once with
the generalised-block planner — and executes both winners.  On a testbed
of single-CPU workstations with few usable machines, strips carry less
surface area per machine count than near-square processor grids would
suggest, so the deferral tends to cost little; the experiment makes the
comparison concrete.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coordinator import AppLeSAgent
from repro.jacobi.apples import ApplesBlockedPlanner, make_jacobi_agent
from repro.jacobi.grid import JacobiProblem
from repro.jacobi.runtime import simulated_execution
from repro.nws.service import NetworkWeatherService
from repro.sim.testbeds import sdsc_pcl_testbed
from repro.util.tables import Table

__all__ = ["DecompositionResult", "run_decomposition_ablation"]


@dataclass
class DecompositionResult:
    """Strip vs generalised-block outcomes for one problem."""

    n: int
    strip_s: float
    strip_machines: tuple[str, ...]
    blocked_s: float
    blocked_machines: tuple[str, ...]
    blocked_grid: tuple[int, int]

    def table(self) -> Table:
        t = Table(
            ["decomposition", "machines", "execution (s)"],
            title=f"ABL-A7 — strip vs generalised block (Jacobi2D n={self.n})",
        )
        t.add("AppLeS strip", ",".join(self.strip_machines), self.strip_s)
        t.add(
            f"AppLeS block ({self.blocked_grid[0]}x{self.blocked_grid[1]})",
            ",".join(self.blocked_machines),
            self.blocked_s,
        )
        return t

    @property
    def strip_competitive(self) -> bool:
        """The paper's deferral is vindicated if strips are within 25%."""
        return self.strip_s <= 1.25 * self.blocked_s


def run_decomposition_ablation(
    n: int = 1600,
    iterations: int = 60,
    seed: int = 1996,
    warmup_s: float = 600.0,
) -> DecompositionResult:
    """Run both planners through the full blueprint and execute the winners."""
    testbed = sdsc_pcl_testbed(seed=seed)
    nws = NetworkWeatherService.for_testbed(testbed, seed=seed + 1)
    nws.warmup(warmup_s)
    problem = JacobiProblem(n=n, iterations=iterations)

    strip_agent = make_jacobi_agent(testbed, problem, nws)
    strip_sched = strip_agent.schedule().best
    strip_run = simulated_execution(testbed.topology, strip_sched, warmup_s)

    blocked_agent = AppLeSAgent(
        strip_agent.info, planner=ApplesBlockedPlanner(problem)
    )
    blocked_sched = blocked_agent.schedule().best
    blocked_run = simulated_execution(testbed.topology, blocked_sched, warmup_s)
    bpart = blocked_sched.metadata["partition"]

    return DecompositionResult(
        n=n,
        strip_s=strip_run.total_time,
        strip_machines=strip_sched.resource_set,
        blocked_s=blocked_run.total_time,
        blocked_machines=blocked_sched.resource_set,
        blocked_grid=(bpart.pr, bpart.pc),
    )

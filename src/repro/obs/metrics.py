"""Metrics: counters, gauges and histograms for the observability layer.

GridSim ships statistics recording as a first-class simulation facility;
this registry plays that role here.  Instrumented layers bump named
instruments through the active tracer's ``metrics`` attribute::

    tr.metrics.counter("core.pruned").inc(stats.pruned)
    tr.metrics.gauge("nws.rmse.ensemble").set(result.rmse)
    tr.metrics.histogram("service.batch_size").observe(len(requests))

Instruments are created on first use and are additive-only observations —
reading or writing them never perturbs an experiment.  The registry is
thread-safe; cross-process aggregation goes through
:meth:`MetricsRegistry.as_records`/:meth:`MetricsRegistry.merge_records`
(the parallel runner merges each worker's metric records back into the
parent: counters add, gauges last-write-wins, histograms combine their
moments).
"""

from __future__ import annotations

import threading
from typing import Any, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: cannot add {amount}")
        self.value += amount

    def as_record(self) -> dict:
        """The JSONL metric record for this instrument."""
        return {"kind": "metric", "metric": "counter", "name": self.name,
                "value": self.value}


class Gauge:
    """A last-write-wins observed value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def as_record(self) -> dict:
        return {"kind": "metric", "metric": "gauge", "name": self.name,
                "value": self.value}


class Histogram:
    """Moment-tracking summary of observed values.

    Tracks count, sum, min and max — enough for the report's rate and
    range columns without retaining every observation.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean observation (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def as_record(self) -> dict:
        return {
            "kind": "metric", "metric": "histogram", "name": self.name,
            "count": self.count, "total": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }


class MetricsRegistry:
    """Named instruments, created on first use.

    One instrument name maps to exactly one kind; asking for the same name
    as a different kind raises (silent aliasing would corrupt reports).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Any] = {}

    def _get(self, name: str, cls: type) -> Any:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = cls(name)
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name``."""
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._instruments)

    def as_records(self) -> list[dict]:
        """Every instrument as a JSONL metric record, sorted by name."""
        with self._lock:
            instruments = sorted(self._instruments.values(), key=lambda i: i.name)
        return [inst.as_record() for inst in instruments]

    def as_dict(self) -> dict[str, dict]:
        """Name → record mapping (handy for assertions in tests)."""
        return {r["name"]: r for r in self.as_records()}

    def merge_records(self, records: Sequence[dict]) -> None:
        """Fold exported metric records (e.g. from a worker) into this registry."""
        for r in records:
            kind = r.get("metric")
            name = r.get("name", "")
            if kind == "counter":
                self.counter(name).inc(r.get("value") or 0.0)
            elif kind == "gauge":
                if r.get("value") is not None:
                    self.gauge(name).set(r["value"])
            elif kind == "histogram":
                h = self.histogram(name)
                count = int(r.get("count") or 0)
                if count > 0:
                    h.count += count
                    h.total += float(r.get("total") or 0.0)
                    if r.get("min") is not None and r["min"] < h.min:
                        h.min = float(r["min"])
                    if r.get("max") is not None and r["max"] > h.max:
                        h.max = float(r["max"])
            else:
                raise ValueError(f"not a metric record: {r!r}")


class _NullInstrument:
    """Shared do-nothing instrument handed out by the null registry."""

    __slots__ = ()
    name = ""
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The disabled registry: every lookup returns the shared no-op."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def __len__(self) -> int:
        return 0

    def as_records(self) -> list[dict]:
        return []

    def as_dict(self) -> dict[str, dict]:
        return {}

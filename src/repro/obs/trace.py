"""Structured tracing: spans, typed events, JSONL persistence.

The paper's whole argument is that scheduling quality is governed by the
quality of *information* about the system — and until now the stack
recorded almost nothing about its own behaviour.  This module is the
recording half of ``repro.obs``: a thread-safe :class:`Tracer` collecting
nested **spans** (an operation with a start and an end) and typed
**events** (a point observation), each keyed to *simulated* time where one
exists (so traces of a seeded experiment are deterministic) and to wall
time otherwise.

Off by default, and near-zero when off
--------------------------------------
The module-level active tracer is a :class:`NullTracer` singleton until an
experiment installs a real one (``--trace PATH`` on the CLI, or the
:func:`tracing` context manager).  Instrumented hot paths follow one
idiom::

    tr = get_tracer()
    if tr.enabled:
        tr.event("core.selector.candidates", layer="core", sets=len(sets))

so a disabled run pays one attribute test per instrumentation site — the
same construction-time-gate philosophy as :mod:`repro.util.perf`.
Instrumentation only ever *reads* experiment state; runs with tracing on
and off are bit-identical by construction, and the equivalence tests
assert it.

Persistence
-----------
Traces round-trip through JSONL, one record per line, mirroring the plain
deliberately-simple conventions of :mod:`repro.sim.trace_io` (plain JSON,
``ValueError`` with the offending path/line on malformed input):

- ``{"kind": "header", "format": "repro.obs-trace", "version": 1}``
- ``{"kind": "span", "id": 3, "parent": 1, "name": "core.decision",
  "layer": "core", "t0": ..., "t1": ..., "clock": "sim", "wall_s": ...,
  "attrs": {...}}``
- ``{"kind": "event", "span": 3, "name": "core.incumbent", "layer":
  "core", "t": ..., "clock": "sim", "fields": {...}}``
- ``{"kind": "metric", "metric": "counter", "name": "core.pruned",
  "value": 1578}``

:func:`validate_records` checks every record against that schema;
:func:`load_records` applies it on read, so a trace that loads is a trace
that validates.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "save_records",
    "load_records",
    "validate_records",
    "TRACE_FORMAT",
    "TRACE_VERSION",
]

TRACE_FORMAT = "repro.obs-trace"
TRACE_VERSION = 1

_RECORD_KINDS = ("header", "span", "event", "metric")
_CLOCKS = ("sim", "wall")


def _jsonable(value: Any) -> Any:
    """Coerce one attribute/field value into something JSON can carry."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class Span:
    """One traced operation: a name, a layer, a start and an end.

    Spans are created through :meth:`Tracer.span` and act as context
    managers.  The backing record is written into the tracer's buffer at
    *start* and completed in place at exit, so nesting order in the
    exported trace is creation order.

    When the operation spans simulated time, the caller passes the start
    instant as ``t`` and may call :meth:`set_end` with the end instant
    (e.g. from an :class:`~repro.sim.execution.IterationResult`); the
    span's clock is then ``"sim"``.  Without a ``t`` the span is stamped
    with wall offsets (``"wall"``).  Either way ``wall_s`` records the
    measured wall duration.
    """

    __slots__ = ("tracer", "record", "_t_end", "_wall0")

    def __init__(self, tracer: "Tracer", record: dict) -> None:
        self.tracer = tracer
        self.record = record
        self._t_end: float | None = None
        self._wall0 = time.perf_counter()

    @property
    def id(self) -> int:
        """The span's id within its trace."""
        return self.record["id"]

    @property
    def attrs(self) -> dict:
        """Mutable span attributes (written into the exported record)."""
        return self.record["attrs"]

    def set_end(self, t: float) -> None:
        """Set the span's end on the simulated clock."""
        self._t_end = float(t)

    def event(self, name: str, t: float | None = None, **fields: Any) -> None:
        """Emit an event attached to this span."""
        self.tracer.event(name, layer=self.record["layer"], t=t,
                          span=self.record["id"], **fields)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.tracer._close_span(self, time.perf_counter() - self._wall0)


class _NullSpan:
    """The do-nothing span the :class:`NullTracer` hands out."""

    __slots__ = ()
    id = 0
    attrs: dict = {}

    def set_end(self, t: float) -> None:
        pass

    def event(self, name: str, t: float | None = None, **fields: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op.

    ``enabled`` is ``False`` so instrumented hot loops can skip even
    building their event payloads; the methods still exist (and recycle
    singleton no-op objects) so un-guarded instrumentation stays safe.
    """

    __slots__ = ()
    enabled = False
    metrics = NullMetricsRegistry()

    def span(self, name: str, layer: str = "", t: float | None = None,
             parent: int | None = None, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, layer: str = "", t: float | None = None,
              span: int | None = None, **fields: Any) -> None:
        pass

    def records(self) -> list[dict]:
        return []

    def export(self, path: Any) -> None:
        raise RuntimeError("cannot export the null tracer; install a Tracer first")


class Tracer:
    """A thread-safe collector of spans, events and metrics.

    Parameters
    ----------
    clock:
        Optional zero-argument callable giving the *default* timestamp for
        spans/events created without an explicit ``t`` — e.g. a simulator's
        ``lambda: sim.now``.  Without one, such records are stamped with
        wall-clock offsets from the tracer's creation and marked
        ``clock="wall"``.

    Notes
    -----
    Span nesting is tracked per thread (each thread has its own stack);
    the record buffer and id allocation are guarded by one lock, so
    concurrent threads interleave records without corruption.  Process
    pools cannot share a tracer — :class:`repro.runner.ParallelRunner`
    instead runs a fresh tracer in each worker and merges the exported
    records deterministically with :meth:`absorb`.
    """

    enabled = True

    def __init__(self, clock: Any | None = None) -> None:
        self._lock = threading.Lock()
        self._records: list[dict] = []
        self._next_id = 1
        self._local = threading.local()
        self._clock = clock
        self._wall0 = time.perf_counter()
        self.metrics = MetricsRegistry()

    # -- internals --------------------------------------------------------
    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _timestamp(self, t: float | None) -> tuple[float, str]:
        if t is not None:
            return float(t), "sim"
        if self._clock is not None:
            return float(self._clock()), "sim"
        return time.perf_counter() - self._wall0, "wall"

    # -- recording --------------------------------------------------------
    def span(self, name: str, layer: str = "", t: float | None = None,
             parent: int | None = None, **attrs: Any) -> Span:
        """Open a span; use as a context manager (``with tracer.span(...)``)."""
        t0, clock = self._timestamp(t)
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        record = {
            "kind": "span",
            "id": 0,  # assigned under the lock below
            "parent": parent,
            "name": str(name),
            "layer": str(layer),
            "t0": t0,
            "t1": None,
            "clock": clock,
            "wall_s": None,
            "attrs": {k: _jsonable(v) for k, v in attrs.items()},
        }
        with self._lock:
            record["id"] = self._next_id
            self._next_id += 1
            self._records.append(record)
        stack.append(record["id"])
        return Span(self, record)

    def _close_span(self, span: Span, wall_s: float) -> None:
        record = span.record
        stack = self._stack()
        if stack and stack[-1] == record["id"]:
            stack.pop()
        with self._lock:
            record["wall_s"] = wall_s
            if span._t_end is not None:
                record["t1"] = span._t_end
            elif record["clock"] == "wall":
                record["t1"] = record["t0"] + wall_s
            else:
                record["t1"] = record["t0"]
            record["attrs"] = {k: _jsonable(v) for k, v in record["attrs"].items()}

    def event(self, name: str, layer: str = "", t: float | None = None,
              span: int | None = None, **fields: Any) -> None:
        """Record one typed point event.

        ``span`` attaches the event to an explicit span id; without it the
        event attaches to the calling thread's innermost open span.
        """
        ts, clock = self._timestamp(t)
        if span is None:
            stack = self._stack()
            span = stack[-1] if stack else None
        record = {
            "kind": "event",
            "span": span,
            "name": str(name),
            "layer": str(layer),
            "t": ts,
            "clock": clock,
            "fields": {k: _jsonable(v) for k, v in fields.items()},
        }
        with self._lock:
            self._records.append(record)

    # -- reading / merging ------------------------------------------------
    def records(self) -> list[dict]:
        """A snapshot of all records: header, spans/events, metric dump."""
        with self._lock:
            body = [dict(r) for r in self._records]
        header = {"kind": "header", "format": TRACE_FORMAT, "version": TRACE_VERSION}
        return [header] + body + self.metrics.as_records()

    def absorb(self, records: Sequence[dict], parent: int | None = None) -> None:
        """Merge another tracer's exported records into this one.

        Used by :class:`repro.runner.ParallelRunner` to fold each worker's
        trace back into the parent: span ids are remapped into this
        tracer's id space, worker root spans are re-parented under
        ``parent``, and metric records are merged into this registry
        (counters add, gauges last-write, histograms combine).  Absorbing
        workers in task order keeps the merged trace deterministic.
        """
        id_map: dict[int, int] = {}
        spans = [r for r in records if r.get("kind") == "span"]
        with self._lock:
            for r in spans:
                id_map[r["id"]] = self._next_id
                self._next_id += 1
            for r in records:
                kind = r.get("kind")
                if kind == "span":
                    merged = dict(r)
                    merged["id"] = id_map[r["id"]]
                    old_parent = r.get("parent")
                    merged["parent"] = (
                        id_map.get(old_parent, parent) if old_parent is not None
                        else parent
                    )
                    self._records.append(merged)
                elif kind == "event":
                    merged = dict(r)
                    old_span = r.get("span")
                    merged["span"] = (
                        id_map.get(old_span, parent) if old_span is not None
                        else parent
                    )
                    self._records.append(merged)
        self.metrics.merge_records(
            [r for r in records if r.get("kind") == "metric"]
        )

    def export(self, path: str | pathlib.Path) -> None:
        """Write the trace (header + records + metric dump) as JSONL."""
        save_records(path, self.records())


NULL_TRACER = NullTracer()
_ACTIVE: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The active tracer (the no-op singleton unless one was installed)."""
    return _ACTIVE


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` as the active tracer (``None`` restores the null)."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return _ACTIVE


@contextmanager
def tracing(path: str | pathlib.Path | None = None,
            tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install a tracer for a block; optionally export on exit.

    Examples
    --------
    >>> from repro.obs import tracing
    >>> with tracing() as tr:
    ...     with tr.span("demo", layer="test"):
    ...         pass
    >>> sum(1 for r in tr.records() if r["kind"] == "span")
    1
    """
    active = tracer if tracer is not None else Tracer()
    previous = get_tracer()
    set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)
        if path is not None:
            active.export(path)


# -- persistence -----------------------------------------------------------
def _check(cond: bool, where: str, message: str) -> None:
    if not cond:
        raise ValueError(f"{where}: {message}")


def validate_records(records: Sequence[dict], where: str = "trace") -> None:
    """Validate a record sequence against the trace schema.

    Raises ``ValueError`` naming the offending record; a sequence that
    passes will round-trip through :func:`save_records`/:func:`load_records`
    unchanged.
    """
    _check(len(records) > 0, where, "empty trace (no header)")
    head = records[0]
    _check(isinstance(head, dict) and head.get("kind") == "header",
           where, "first record must be the header")
    _check(head.get("format") == TRACE_FORMAT,
           where, f"unknown trace format {head.get('format')!r}")
    _check(isinstance(head.get("version"), int),
           where, "header version must be an integer")
    span_ids: set[int] = set()
    for i, r in enumerate(records[1:], start=2):
        loc = f"{where} record {i}"
        _check(isinstance(r, dict), loc, "record must be an object")
        kind = r.get("kind")
        _check(kind in _RECORD_KINDS, loc, f"unknown kind {kind!r}")
        if kind == "span":
            _check(isinstance(r.get("id"), int) and r["id"] > 0,
                   loc, "span id must be a positive integer")
            _check(r["id"] not in span_ids, loc, f"duplicate span id {r['id']}")
            span_ids.add(r["id"])
            _check(r.get("parent") is None or isinstance(r["parent"], int),
                   loc, "span parent must be an id or null")
            _check(isinstance(r.get("name"), str) and r["name"] != "",
                   loc, "span needs a non-empty name")
            _check(isinstance(r.get("t0"), (int, float)), loc, "span needs t0")
            _check(r.get("t1") is None or isinstance(r["t1"], (int, float)),
                   loc, "span t1 must be a number or null")
            _check(r.get("clock") in _CLOCKS, loc, f"bad clock {r.get('clock')!r}")
            _check(isinstance(r.get("attrs"), dict), loc, "span attrs must be an object")
        elif kind == "event":
            _check(isinstance(r.get("name"), str) and r["name"] != "",
                   loc, "event needs a non-empty name")
            _check(isinstance(r.get("t"), (int, float)), loc, "event needs t")
            _check(r.get("clock") in _CLOCKS, loc, f"bad clock {r.get('clock')!r}")
            _check(r.get("span") is None or isinstance(r["span"], int),
                   loc, "event span must be an id or null")
            _check(isinstance(r.get("fields"), dict), loc, "event fields must be an object")
        elif kind == "metric":
            _check(isinstance(r.get("name"), str) and r["name"] != "",
                   loc, "metric needs a non-empty name")
            _check(r.get("metric") in ("counter", "gauge", "histogram"),
                   loc, f"bad metric type {r.get('metric')!r}")
        else:  # a second header
            _check(False, loc, "duplicate header")


def save_records(path: str | pathlib.Path, records: Sequence[dict]) -> None:
    """Write validated records to ``path`` as JSONL."""
    validate_records(records, where=str(path))
    lines = [json.dumps(r, sort_keys=True) for r in records]
    pathlib.Path(path).write_text("\n".join(lines) + "\n")


def load_records(path: str | pathlib.Path) -> list[dict]:
    """Read a JSONL trace back, validating every record.

    Raises ``ValueError`` on malformed files (bad JSON, missing header,
    schema violations), naming the path and line.
    """
    text = pathlib.Path(path).read_text()
    records: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not a JSON record") from exc
    validate_records(records, where=str(path))
    return records

"""``repro.obs`` — structured tracing & metrics across the whole stack.

Scheduling quality is governed by the quality of information about the
system (the paper's thesis); this subsystem applies the same principle to
the reproduction itself.  Three modules:

- :mod:`repro.obs.trace` — a thread-safe :class:`Tracer` of nested spans
  and typed events, keyed to simulated time where one exists, with JSONL
  export/import and schema validation;
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and histograms;
- :mod:`repro.obs.report` — summary tables and a trace diff
  (``python -m repro obs-report``).

Tracing is **off by default**: the active tracer is a no-op singleton
until ``--trace PATH`` (any experiment subcommand) or
:func:`tracing` installs a real one, and instrumented layers guard their
payload construction behind ``tracer.enabled`` — so disabled runs pay
near-zero overhead and runs with tracing on/off are bit-identical
(asserted by the equivalence tests and
``benchmarks/bench_obs_overhead.py``).

Instrumented layers and their span/event prefixes:

=========  =============================================================
layer      what is recorded
=========  =============================================================
core       Coordinator decisions (candidates, pruning, incumbents),
           selector candidate generation, adaptive reschedules
service    batch sizes, vectorised vs surrendered rows, scalar configs
sim        ``simulate_iterations`` runs (fast vs reference dispatch),
           ``CompiledExecution`` compile stats and live-load fallbacks,
           engine event counts
nws        sensor advances, forecast cache hits/misses, per-forecaster
           backtest error
runner     per-task spans; worker traces merged deterministically
=========  =============================================================
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    TraceData,
    read_trace,
    render_report,
    trace_diff,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    load_records,
    save_records,
    set_tracer,
    tracing,
    validate_records,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceData",
    "read_trace",
    "render_report",
    "trace_diff",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "load_records",
    "save_records",
    "set_tracer",
    "tracing",
    "validate_records",
]

"""Trace reports: summary tables and run-to-run diffs.

The reading half of ``repro.obs``: load a JSONL trace emitted by
``--trace PATH`` and render what the run did — spans by layer, event
counts, metric values — or diff two traces to see how a change (a new
forecaster, a different selector) moved the recorded behaviour.  Exposed
on the CLI as ``python -m repro obs-report <trace.jsonl> [--diff OTHER]``.

Tables come from :mod:`repro.util.tables`, so reports are aligned,
diff-friendly plain text like every other artifact in the repository.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.trace import load_records
from repro.util.tables import Table

__all__ = ["TraceData", "read_trace", "span_table", "event_table",
           "metric_table", "render_report", "trace_diff"]


@dataclass
class TraceData:
    """A parsed trace: records split by kind, with derived views."""

    records: list[dict] = field(default_factory=list)

    @property
    def spans(self) -> list[dict]:
        """All span records, in trace order."""
        return [r for r in self.records if r["kind"] == "span"]

    @property
    def events(self) -> list[dict]:
        """All event records, in trace order."""
        return [r for r in self.records if r["kind"] == "event"]

    @property
    def metrics(self) -> dict[str, dict]:
        """Metric name → record."""
        return {r["name"]: r for r in self.records if r["kind"] == "metric"}

    @property
    def layers(self) -> set[str]:
        """Every non-empty layer tag that appears on a span or event."""
        return {
            r["layer"]
            for r in self.records
            if r["kind"] in ("span", "event") and r.get("layer")
        }

    def span_children(self, span_id: int) -> list[dict]:
        """Direct child spans of ``span_id``."""
        return [s for s in self.spans if s.get("parent") == span_id]


def read_trace(path: str | pathlib.Path) -> TraceData:
    """Load and validate a JSONL trace from ``path``."""
    return TraceData(records=load_records(path))


def _span_groups(spans: Sequence[dict]) -> dict[tuple[str, str], list[dict]]:
    groups: dict[tuple[str, str], list[dict]] = {}
    for s in spans:
        groups.setdefault((s.get("layer", ""), s["name"]), []).append(s)
    return groups


def span_table(data: TraceData) -> Table:
    """Spans grouped by (layer, name): count and wall-time totals."""
    t = Table(["layer", "span", "count", "wall_total_s", "wall_mean_s"],
              title="Spans")
    for (layer, name), group in sorted(_span_groups(data.spans).items()):
        walls = [s["wall_s"] for s in group if s.get("wall_s") is not None]
        total = float(sum(walls))
        mean = total / len(walls) if walls else 0.0
        t.add(layer, name, len(group), total, mean)
    return t


def event_table(data: TraceData) -> Table:
    """Events grouped by (layer, name): occurrence counts."""
    counts: dict[tuple[str, str], int] = {}
    for e in data.events:
        key = (e.get("layer", ""), e["name"])
        counts[key] = counts.get(key, 0) + 1
    t = Table(["layer", "event", "count"], title="Events")
    for (layer, name), n in sorted(counts.items()):
        t.add(layer, name, n)
    return t


def _metric_value(record: dict) -> float | None:
    if record["metric"] == "histogram":
        return record.get("count")
    return record.get("value")


def metric_table(data: TraceData) -> Table:
    """Every metric instrument with its aggregate value(s)."""
    t = Table(["metric", "kind", "value", "detail"], title="Metrics")
    for name, r in sorted(data.metrics.items()):
        if r["metric"] == "histogram":
            count = r.get("count") or 0
            mean = (r.get("total") or 0.0) / count if count else 0.0
            detail = (
                f"mean={mean:.4g} min={r.get('min')} max={r.get('max')}"
                if count else "empty"
            )
            t.add(name, "histogram", count, detail)
        else:
            t.add(name, r["metric"], r.get("value"), "")
    return t


def render_report(data: TraceData) -> str:
    """The full plain-text report for one trace."""
    lines = [
        f"Trace report — {len(data.spans)} spans, {len(data.events)} events, "
        f"{len(data.metrics)} metrics",
        f"layers: {', '.join(sorted(data.layers)) or '(none)'}",
        "",
        span_table(data).render(),
        "",
        event_table(data).render(),
        "",
        metric_table(data).render(),
    ]
    return "\n".join(lines)


def trace_diff(a: TraceData, b: TraceData, label_a: str = "A",
               label_b: str = "B") -> Table:
    """Compare two runs: span counts, event counts and metric values.

    One row per observed quantity present in either trace, with both
    values and the delta — how a change moved the recorded behaviour
    (more pruning, fewer fallbacks, different forecast error).
    """
    def quantities(data: TraceData) -> dict[str, float]:
        out: dict[str, float] = {}
        for (layer, name), group in _span_groups(data.spans).items():
            out[f"span:{layer}:{name}"] = len(group)
        for e in data.events:
            key = f"event:{e.get('layer', '')}:{e['name']}"
            out[key] = out.get(key, 0) + 1
        for name, r in data.metrics.items():
            value = _metric_value(r)
            if value is not None:
                out[f"metric:{name}"] = value
        return out

    qa, qb = quantities(a), quantities(b)
    t = Table(["quantity", label_a, label_b, "delta"],
              title=f"Trace diff — {label_a} vs {label_b}")
    for key in sorted(set(qa) | set(qb)):
        va, vb = qa.get(key, 0.0), qb.get(key, 0.0)
        t.add(key, va, vb, vb - va)
    return t
